//! Pluggable truth sources: the abstract probe substrate behind [`crate::Oracle`].
//!
//! The paper's model (§2) only requires that a player can *probe* its own
//! hidden preference for an object; nothing forces the hidden matrix `v` to
//! exist in memory. [`TruthSource`] captures exactly that contract, with two
//! backends:
//!
//! * [`DenseTruth`] — an owned [`BitMatrix`]: the classic simulation
//!   substrate, `players × objects` bits of storage. Right for `n ≲ 10⁴`
//!   and whenever experiments need whole-matrix metrics (OPT bounds,
//!   planted-diameter audits).
//! * [`ProceduralTruth`] — regenerates planted-cluster bits on the fly from
//!   a [`ClusterSpec`] (seed + cluster model). Storage is `O(k·m)` for the
//!   `k` cluster centers — independent of the player count — which opens
//!   `n ≥ 10⁵` workloads the dense backend cannot hold.
//!
//! The two backends are *bit-identical* for the same spec:
//! [`ClusterSpec::materialize`] evaluates the procedural formula into a
//! dense matrix, and `tests/truth_equivalence.rs` pins end-to-end outcome
//! equality across every registry algorithm.

use std::sync::Arc;

use byzscore_bitset::{BitMatrix, BitVec, Bits};
use byzscore_random::derive_seed;

/// Read-only access to the hidden preference bits.
///
/// Implementations must be pure: `value(p, o)` never changes for the life
/// of the source, so memoized oracles, parallel phases, and repeated
/// protocol runs all observe one consistent world. Probe *metering* is not
/// the source's job — that belongs to [`crate::Oracle`], the only sanctioned
/// path from protocol code to a truth source.
pub trait TruthSource: Send + Sync {
    /// Number of players `n` (rows).
    fn players(&self) -> usize;

    /// Number of objects (columns).
    fn objects(&self) -> usize;

    /// The hidden preference of `player` for `object`.
    fn value(&self, player: u32, object: u32) -> bool;

    /// `player`'s full preference row, materialized.
    ///
    /// Default: one [`TruthSource::value`] call per object. Backends with a
    /// cheaper bulk path (dense rows, cluster centers) override this; it is
    /// used by omniscient adversary strategies and by outcome metrics, never
    /// by metered protocol code.
    fn row(&self, player: u32) -> BitVec {
        BitVec::from_fn(self.objects(), |o| self.value(player, o as u32))
    }
}

impl TruthSource for BitMatrix {
    fn players(&self) -> usize {
        self.rows()
    }

    fn objects(&self) -> usize {
        self.cols()
    }

    #[inline]
    fn value(&self, player: u32, object: u32) -> bool {
        self.get(player as usize, object as usize)
    }

    fn row(&self, player: u32) -> BitVec {
        self.row_to_bitvec(player as usize)
    }
}

/// The dense backend: an owned truth matrix.
///
/// Owning (rather than borrowing) the matrix is what removes the `'a`
/// lifetime that previously infected `Oracle<'a>` and everything downstream.
#[derive(Clone, Debug)]
pub struct DenseTruth {
    matrix: BitMatrix,
}

impl DenseTruth {
    /// Wrap an owned truth matrix.
    pub fn new(matrix: BitMatrix) -> Self {
        DenseTruth { matrix }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }
}

impl TruthSource for DenseTruth {
    fn players(&self) -> usize {
        self.matrix.rows()
    }

    fn objects(&self) -> usize {
        self.matrix.cols()
    }

    #[inline]
    fn value(&self, player: u32, object: u32) -> bool {
        self.matrix.get(player as usize, object as usize)
    }

    fn row(&self, player: u32) -> BitVec {
        self.matrix.row_to_bitvec(player as usize)
    }
}

/// Planted-cluster model evaluated procedurally: `clusters` centers of
/// `objects` random bits each, every player assigned to a cluster
/// (even sizes, contiguous blocks) and differing from its center on at most
/// `diameter / 2` pseudo-randomly drawn objects — so intra-cluster pairwise
/// Hamming distance is at most `diameter`, matching the structure of
/// Definition 1 / Lemma 12 exactly like `Workload::PlantedClusters`.
///
/// Every bit is a pure function of `(seed, player, object)`, so a
/// [`ProceduralTruth`] over this spec needs no per-player state at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of players `n`.
    pub players: usize,
    /// Number of objects.
    pub objects: usize,
    /// Number of planted clusters (≥ 1).
    pub clusters: usize,
    /// Target intra-cluster diameter `D`: members flip at most `D/2` center
    /// bits.
    pub diameter: usize,
    /// Master seed of the truth formula.
    pub seed: u64,
}

// Seed-derivation tags of the procedural formula. Truth bits and protocol
// randomness flow from different master seeds, so these only need to be
// distinct from each other.
const TAG_CENTER: u64 = 0x7c3a;
const TAG_FLIP_COUNT: u64 = 0x7f1c;
const TAG_FLIP_POS: u64 = 0x7f19;

impl ClusterSpec {
    /// Cluster index of `player` (even block assignment, same shape as
    /// `Balance::Even`: the first `players % clusters` clusters get one
    /// extra member).
    pub fn cluster_of(&self, player: u32) -> u32 {
        let p = player as usize;
        let base = self.players / self.clusters;
        let extra = self.players % self.clusters;
        let boundary = extra * (base + 1);
        if p < boundary {
            (p / (base + 1)) as u32
        } else {
            (extra + (p - boundary) / base) as u32
        }
    }

    /// Number of center bits `player` flips (0 ..= diameter/2).
    fn flip_count(&self, player: u32) -> usize {
        let budget = self.diameter / 2;
        if budget == 0 {
            return 0;
        }
        (derive_seed(self.seed, &[TAG_FLIP_COUNT, u64::from(player)]) % (budget as u64 + 1))
            as usize
    }

    /// The `i`-th flip position of `player`.
    #[inline]
    fn flip_pos(&self, player: u32, i: usize) -> u32 {
        (derive_seed(self.seed, &[TAG_FLIP_POS, u64::from(player), i as u64]) % self.objects as u64)
            as u32
    }

    /// One center bit.
    #[inline]
    fn center_bit(&self, cluster: u32, object: u32) -> bool {
        derive_seed(
            self.seed,
            &[TAG_CENTER, u64::from(cluster), u64::from(object)],
        ) & 1
            == 1
    }

    /// Materialize the full truth matrix this spec denotes — the dense twin
    /// of a [`ProceduralTruth`] over the same spec, bit for bit.
    pub fn materialize(&self) -> BitMatrix {
        let source = ProceduralTruth::new(self.clone());
        let rows: Vec<BitVec> = (0..self.players as u32).map(|p| source.row(p)).collect();
        BitMatrix::from_rows(&rows)
    }
}

/// The streaming backend: truth bits computed on demand from a
/// [`ClusterSpec`].
///
/// Only the `clusters × objects` center bits are cached (they are shared by
/// every member, and caching them makes `value` one XOR instead of one hash
/// per center bit); everything per-*player* is recomputed per probe, so
/// memory is independent of `n`.
pub struct ProceduralTruth {
    spec: ClusterSpec,
    centers: Vec<BitVec>,
}

impl ProceduralTruth {
    /// Build the source (computes the `k` center rows, `O(k·m)`).
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.clusters >= 1, "need at least one cluster");
        assert!(
            spec.players >= spec.clusters,
            "need at least one player per cluster"
        );
        assert!(spec.objects >= 1, "need at least one object");
        let centers = (0..spec.clusters as u32)
            .map(|c| BitVec::from_fn(spec.objects, |o| spec.center_bit(c, o as u32)))
            .collect();
        ProceduralTruth { spec, centers }
    }

    /// The generating spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Cluster centers (one per cluster).
    pub fn centers(&self) -> &[BitVec] {
        &self.centers
    }

    /// Per-player cluster assignment (computed, `O(n)` to list).
    pub fn assignment(&self) -> Vec<u32> {
        (0..self.spec.players as u32)
            .map(|p| self.spec.cluster_of(p))
            .collect()
    }

    /// Cluster member lists (sorted, `O(n)` to list).
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.spec.clusters];
        for p in 0..self.spec.players as u32 {
            out[self.spec.cluster_of(p) as usize].push(p);
        }
        out
    }

    /// Dense twin of this source (same bits; see [`ClusterSpec::materialize`]).
    pub fn materialize(&self) -> BitMatrix {
        self.spec.materialize()
    }

    /// Whether `player`'s preference for `object` differs from its center
    /// (parity over the flip draws, so a position drawn twice cancels).
    #[inline]
    fn flipped(&self, player: u32, object: u32) -> bool {
        let f = self.spec.flip_count(player);
        let mut flip = false;
        for i in 0..f {
            if self.spec.flip_pos(player, i) == object {
                flip = !flip;
            }
        }
        flip
    }
}

impl TruthSource for ProceduralTruth {
    fn players(&self) -> usize {
        self.spec.players
    }

    fn objects(&self) -> usize {
        self.spec.objects
    }

    #[inline]
    fn value(&self, player: u32, object: u32) -> bool {
        let c = self.spec.cluster_of(player) as usize;
        self.centers[c].get(object as usize) ^ self.flipped(player, object)
    }

    fn row(&self, player: u32) -> BitVec {
        let mut row = self.centers[self.spec.cluster_of(player) as usize].clone();
        for i in 0..self.spec.flip_count(player) {
            row.flip(self.spec.flip_pos(player, i) as usize);
        }
        row
    }
}

/// A view of an inner truth source through an identity map: slot `p` of
/// the view reads row `map[p]` of the inner source.
///
/// This is the substrate half of **churn**: a dynamic world draws its
/// population from a fixed pool source (dense or procedural — the adapter
/// is backend-agnostic), and between protocol executions the runner
/// retires some slots and maps fresh pool identities in. Each
/// `RemappedTruth` is immutable, preserving the [`TruthSource`] purity
/// contract; the *sequence* of maps carries the dynamics.
pub struct RemappedTruth {
    inner: Arc<dyn TruthSource>,
    map: Vec<u32>,
}

impl RemappedTruth {
    /// View `inner` through `map` (slot → inner row). Every entry must be
    /// a valid inner row.
    pub fn new(inner: Arc<dyn TruthSource>, map: Vec<u32>) -> Self {
        let rows = inner.players();
        assert!(
            map.iter().all(|&r| (r as usize) < rows),
            "identity map points past the {rows}-row pool"
        );
        RemappedTruth { inner, map }
    }

    /// The identity map (slot → inner row).
    pub fn map(&self) -> &[u32] {
        &self.map
    }

    /// The pool source being viewed.
    pub fn inner(&self) -> &Arc<dyn TruthSource> {
        &self.inner
    }
}

impl TruthSource for RemappedTruth {
    fn players(&self) -> usize {
        self.map.len()
    }

    fn objects(&self) -> usize {
        self.inner.objects()
    }

    #[inline]
    fn value(&self, player: u32, object: u32) -> bool {
        self.inner.value(self.map[player as usize], object)
    }

    fn row(&self, player: u32) -> BitVec {
        self.inner.row(self.map[player as usize])
    }
}

/// Conversion into a shared truth source, so constructors like
/// [`crate::Oracle::new`] accept a borrowed matrix (cloned), an owned
/// backend, or an already-shared `Arc` without ceremony.
pub trait IntoTruthSource {
    /// Convert into a shared, type-erased truth source.
    fn into_truth_source(self) -> Arc<dyn TruthSource>;
}

impl IntoTruthSource for Arc<dyn TruthSource> {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        self
    }
}

impl IntoTruthSource for BitMatrix {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        Arc::new(DenseTruth::new(self))
    }
}

impl IntoTruthSource for &BitMatrix {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        Arc::new(DenseTruth::new(self.clone()))
    }
}

impl IntoTruthSource for DenseTruth {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        Arc::new(self)
    }
}

impl IntoTruthSource for ProceduralTruth {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        Arc::new(self)
    }
}

impl IntoTruthSource for RemappedTruth {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::Bits;

    fn spec(players: usize, objects: usize) -> ClusterSpec {
        ClusterSpec {
            players,
            objects,
            clusters: 4,
            diameter: 8,
            seed: 0xabcd,
        }
    }

    #[test]
    fn bitmatrix_is_a_truth_source() {
        let m = BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, true]),
        ]);
        let t: &dyn TruthSource = &m;
        assert_eq!(t.players(), 2);
        assert_eq!(t.objects(), 2);
        assert!(t.value(0, 0));
        assert!(!t.value(0, 1));
        assert_eq!(t.row(1).count_ones(), 1);
    }

    #[test]
    fn dense_matches_matrix() {
        let m = BitMatrix::from_rows(&[BitVec::from_bools(&[true, true, false])]);
        let d = DenseTruth::new(m.clone());
        for o in 0..3 {
            assert_eq!(d.value(0, o), m.get(0, o as usize));
        }
        assert_eq!(d.matrix(), &m);
    }

    #[test]
    fn procedural_is_deterministic_and_seed_sensitive() {
        let a = ProceduralTruth::new(spec(32, 64));
        let b = ProceduralTruth::new(spec(32, 64));
        let mut c_spec = spec(32, 64);
        c_spec.seed ^= 1;
        let c = ProceduralTruth::new(c_spec);
        let mut differs = false;
        for p in 0..32u32 {
            for o in 0..64u32 {
                assert_eq!(a.value(p, o), b.value(p, o));
                differs |= a.value(p, o) != c.value(p, o);
            }
        }
        assert!(differs, "distinct seeds must give distinct truths");
    }

    #[test]
    fn procedural_matches_its_materialization() {
        let t = ProceduralTruth::new(spec(48, 96));
        let m = t.materialize();
        for p in 0..48u32 {
            assert_eq!(t.row(p), m.row_to_bitvec(p as usize), "row {p}");
            for o in (0..96u32).step_by(7) {
                assert_eq!(t.value(p, o), m.get(p as usize, o as usize));
            }
        }
    }

    #[test]
    fn procedural_respects_diameter() {
        let t = ProceduralTruth::new(spec(64, 256));
        let m = t.materialize();
        for members in t.clusters() {
            let diam = m.diameter_of(&members);
            assert!(diam <= 8, "cluster diameter {diam} > spec diameter 8");
        }
    }

    #[test]
    fn even_assignment_matches_balance_even() {
        // 10 players, 4 clusters: sizes 3,3,2,2 — contiguous blocks.
        let s = ClusterSpec {
            players: 10,
            objects: 4,
            clusters: 4,
            diameter: 0,
            seed: 1,
        };
        let assignment: Vec<u32> = (0..10).map(|p| s.cluster_of(p)).collect();
        assert_eq!(assignment, vec![0, 0, 0, 1, 1, 1, 2, 2, 3, 3]);
        let t = ProceduralTruth::new(s);
        assert_eq!(
            t.clusters().iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
    }

    #[test]
    fn zero_diameter_gives_exact_clones() {
        let s = ClusterSpec {
            players: 12,
            objects: 40,
            clusters: 3,
            diameter: 0,
            seed: 9,
        };
        let t = ProceduralTruth::new(s);
        for members in t.clusters() {
            for w in members.windows(2) {
                assert_eq!(t.row(w[0]), t.row(w[1]), "clones must be identical");
            }
        }
    }

    #[test]
    fn remapped_reads_through_the_map() {
        let pool = spec(16, 32);
        let t = ProceduralTruth::new(pool);
        let dense = t.materialize();
        let map = vec![3u32, 3, 15, 0];
        let view = RemappedTruth::new(Arc::new(t), map.clone());
        assert_eq!(view.players(), 4);
        assert_eq!(view.objects(), 32);
        for (slot, &row) in map.iter().enumerate() {
            assert_eq!(view.row(slot as u32), dense.row_to_bitvec(row as usize));
            assert_eq!(view.value(slot as u32, 7), dense.get(row as usize, 7));
        }
        assert_eq!(view.map(), &map[..]);
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn remapped_rejects_out_of_pool_rows() {
        let t = ProceduralTruth::new(spec(8, 16));
        RemappedTruth::new(Arc::new(t), vec![8]);
    }

    #[test]
    fn into_truth_source_conversions() {
        let m = BitMatrix::zeros(2, 2);
        let a = (&m).into_truth_source();
        let b = m.clone().into_truth_source();
        assert_eq!(a.players(), b.players());
        let arc: Arc<dyn TruthSource> = Arc::new(DenseTruth::new(m));
        assert_eq!(arc.clone().into_truth_source().objects(), 2);
    }
}
