//! Time-varying truth: the [`DriftingTruth`] backend.
//!
//! The paper proves its guarantees against a *fixed* hidden matrix, but
//! real scoring populations are not static: tastes shift between protocol
//! executions, and trust-score literature (Ignat et al.) observes that
//! participant behaviour co-evolves with the scoring itself. The
//! [`crate::TruthSource`] contract deliberately pins one *immutable* world
//! per source, so time is modeled **across** sources, not inside one:
//! a [`DriftingTruth`] is an immutable snapshot of the world *at one
//! epoch*, and advancing time ([`DriftingTruth::at_epoch`] /
//! [`DriftingTruth::advance`]) yields a fresh source sharing the same base
//! substrate. Protocol code, oracles, and memoization never observe a bit
//! change mid-run — exactly the purity every determinism test relies on.
//!
//! The drift itself is a seeded pure function: at each epoch `e ≥ 1`,
//! every `(player, object)` bit inside the schedule's locality flips
//! independently with probability `rate` (a fixed-point threshold, so the
//! decision is integer-exact and host-independent). The value at epoch `t`
//! is the base value XOR the parity of the flip decisions over epochs
//! `1..=t` — hence [`DriftingTruth::materialize_at`] has one canonical
//! dense twin that `tests/dynamic_world.rs` replays bit for bit.

use std::sync::Arc;

use byzscore_bitset::{BitMatrix, BitVec, Bits};
use byzscore_random::derive_seed;

use crate::truth::{IntoTruthSource, TruthSource};

/// Seed-derivation tag of the drift formula (distinct from the
/// `ClusterSpec` tags; drift and base truth may even share a master seed).
const TAG_DRIFT: u64 = 0xd21f;

/// Fixed-point denominator of the drift rate: flip decisions compare a
/// 32-bit hash slice against `threshold = rate · 2³²`, so equality of two
/// schedules is exact and no float crosses a host boundary.
const RATE_ONE: u64 = 1 << 32;

/// Which objects a drift schedule is allowed to touch.
///
/// Preference drift is rarely uniform: a news cycle moves opinions on one
/// topical slice while the back catalogue stays put. Locality confines the
/// per-epoch flips to a sub-mask of the object axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriftLocality {
    /// Every object may drift.
    Global,
    /// Only objects in `start..start + len` may drift (clamped to the
    /// object count; an empty window freezes the world).
    Window {
        /// First driftable object.
        start: usize,
        /// Window length.
        len: usize,
    },
    /// Exactly the set objects of the mask may drift (objects beyond the
    /// mask's length are frozen).
    Mask(BitVec),
}

impl DriftLocality {
    /// May `object` drift under this locality?
    #[inline]
    pub fn contains(&self, object: u32) -> bool {
        match self {
            DriftLocality::Global => true,
            DriftLocality::Window { start, len } => {
                let o = object as usize;
                o >= *start && o < start.saturating_add(*len)
            }
            DriftLocality::Mask(mask) => {
                let o = object as usize;
                o < mask.len() && mask.get(o)
            }
        }
    }

    /// The driftable sub-range of `0..objects` as an iterator bound
    /// `(start, end)` — the hot loop of [`DriftingTruth::row`] only visits
    /// objects that can actually flip.
    fn bounds(&self, objects: usize) -> (usize, usize) {
        match self {
            DriftLocality::Global => (0, objects),
            DriftLocality::Window { start, len } => (
                (*start).min(objects),
                start.saturating_add(*len).min(objects),
            ),
            DriftLocality::Mask(mask) => (0, mask.len().min(objects)),
        }
    }
}

/// A seeded per-epoch drift law: rate + locality + seed.
///
/// Pure data; every flip decision is a function of
/// `(seed, epoch, player, object)`, so two schedules with equal fields
/// denote the same trajectory on any host and thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftSchedule {
    /// Fixed-point flip probability: a bit flips at an epoch iff a 32-bit
    /// hash slice is `< threshold`. `threshold = 0` freezes the world,
    /// `threshold = 2³²` flips everything in the locality each epoch.
    threshold: u64,
    /// Which objects may drift.
    pub locality: DriftLocality,
    /// Master seed of the drift randomness (independent of the base
    /// truth's seed).
    pub seed: u64,
}

impl DriftSchedule {
    /// Schedule flipping each in-locality bit per epoch with probability
    /// `rate` (clamped to `[0, 1]`, quantized to 2⁻³²).
    pub fn new(rate: f64, locality: DriftLocality, seed: u64) -> Self {
        let threshold = (rate.clamp(0.0, 1.0) * RATE_ONE as f64).round() as u64;
        DriftSchedule {
            threshold: threshold.min(RATE_ONE),
            locality,
            seed,
        }
    }

    /// Uniform (global-locality) drift at `rate`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        DriftSchedule::new(rate, DriftLocality::Global, seed)
    }

    /// The quantized flip probability.
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / RATE_ONE as f64
    }

    /// Does `(player, object)` flip at epoch `epoch`? Pure; `epoch = 0` is
    /// the base world and never flips. Public so tests can replay the
    /// schedule densely and compare against [`DriftingTruth::materialize_at`].
    #[inline]
    pub fn flips(&self, epoch: u64, player: u32, object: u32) -> bool {
        if epoch == 0 || self.threshold == 0 || !self.locality.contains(object) {
            return false;
        }
        let h = derive_seed(
            self.seed,
            &[TAG_DRIFT, epoch, u64::from(player), u64::from(object)],
        );
        (h & (RATE_ONE - 1)) < self.threshold
    }

    /// Parity of the flip decisions over epochs `1..=epoch` — whether the
    /// bit at `(player, object)` differs from the base world at `epoch`.
    #[inline]
    fn drifted(&self, epoch: u64, player: u32, object: u32) -> bool {
        if epoch == 0 || self.threshold == 0 || !self.locality.contains(object) {
            return false;
        }
        let mut flip = false;
        for e in 1..=epoch {
            flip ^= self.flips(e, player, object);
        }
        flip
    }
}

/// A truth source whose preferences drift over epochs.
///
/// Each instance is pinned at one epoch (immutable, per the
/// [`TruthSource`] purity contract); [`DriftingTruth::at_epoch`] /
/// [`DriftingTruth::advance`] produce the neighbouring snapshots, sharing
/// the base substrate behind an `Arc`. Works over **any** base backend —
/// dense matrices and procedural cluster specs alike — so `@scale`
/// drifting worlds cost no extra memory.
#[derive(Clone)]
pub struct DriftingTruth {
    base: Arc<dyn TruthSource>,
    schedule: DriftSchedule,
    epoch: u64,
}

impl DriftingTruth {
    /// A drifting world over `base`, pinned at epoch 0 (identical to the
    /// base world).
    pub fn new(base: impl IntoTruthSource, schedule: DriftSchedule) -> Self {
        DriftingTruth {
            base: base.into_truth_source(),
            schedule,
            epoch: 0,
        }
    }

    /// The epoch this snapshot is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The same world pinned at epoch `t` (cheap: shares the base).
    pub fn at_epoch(&self, t: u64) -> Self {
        DriftingTruth {
            base: self.base.clone(),
            schedule: self.schedule.clone(),
            epoch: t,
        }
    }

    /// The next epoch's snapshot.
    pub fn advance(&self) -> Self {
        self.at_epoch(self.epoch + 1)
    }

    /// The drift law.
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }

    /// The base (epoch-0) substrate.
    pub fn base(&self) -> &Arc<dyn TruthSource> {
        &self.base
    }

    /// Dense twin of this world at epoch `t`: the `players × objects`
    /// matrix with every drift applied — bit-identical to probing an
    /// `at_epoch(t)` source, and to replaying the schedule over a
    /// materialized base (`tests/dynamic_world.rs` pins both).
    pub fn materialize_at(&self, t: u64) -> BitMatrix {
        let snap = self.at_epoch(t);
        let rows: Vec<BitVec> = (0..self.base.players() as u32)
            .map(|p| snap.row(p))
            .collect();
        BitMatrix::from_rows(&rows)
    }

    /// All epochs `0..=epochs` materialized in one incremental replay:
    /// `out[t]` is bit-identical to [`DriftingTruth::materialize_at`]`(t)`,
    /// but the flip history is applied epoch over epoch, so the whole
    /// trajectory costs `O(players · locality · epochs)` hash evaluations
    /// instead of the `O(… · epochs²)` that `epochs` separate
    /// `materialize_at` calls pay — each of those replays `1..=t` from
    /// scratch, as does every single [`TruthSource::value`] probe (the
    /// price of the pure `O(1)`-memory law). Dense trajectory consumers
    /// (graded drift, equivalence tests) should take this path.
    pub fn materialize_trajectory(&self, epochs: u64) -> Vec<BitMatrix> {
        let players = self.base.players();
        let mut rows: Vec<BitVec> = (0..players as u32).map(|p| self.base.row(p)).collect();
        let mut out = Vec::with_capacity(epochs as usize + 1);
        out.push(BitMatrix::from_rows(&rows));
        let (start, end) = self.schedule.locality.bounds(self.base.objects());
        for e in 1..=epochs {
            for (p, row) in rows.iter_mut().enumerate() {
                for o in start..end {
                    if self.schedule.flips(e, p as u32, o as u32) {
                        row.flip(o);
                    }
                }
            }
            out.push(BitMatrix::from_rows(&rows));
        }
        out
    }
}

impl TruthSource for DriftingTruth {
    fn players(&self) -> usize {
        self.base.players()
    }

    fn objects(&self) -> usize {
        self.base.objects()
    }

    #[inline]
    fn value(&self, player: u32, object: u32) -> bool {
        self.base.value(player, object) ^ self.schedule.drifted(self.epoch, player, object)
    }

    fn row(&self, player: u32) -> BitVec {
        let mut row = self.base.row(player);
        if self.epoch == 0 {
            return row;
        }
        let (start, end) = self.schedule.locality.bounds(self.base.objects());
        for o in start..end {
            if self.schedule.drifted(self.epoch, player, o as u32) {
                row.flip(o);
            }
        }
        row
    }
}

impl IntoTruthSource for DriftingTruth {
    fn into_truth_source(self) -> Arc<dyn TruthSource> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::ClusterSpec;
    use byzscore_bitset::Bits;

    fn base_spec() -> ClusterSpec {
        ClusterSpec {
            players: 24,
            objects: 64,
            clusters: 3,
            diameter: 4,
            seed: 0xd1f7,
        }
    }

    fn world(rate: f64, locality: DriftLocality) -> DriftingTruth {
        DriftingTruth::new(
            crate::truth::ProceduralTruth::new(base_spec()),
            DriftSchedule::new(rate, locality, 0xabc),
        )
    }

    #[test]
    fn epoch_zero_is_the_base_world() {
        let w = world(0.3, DriftLocality::Global);
        let base = base_spec().materialize();
        for p in 0..24u32 {
            assert_eq!(w.row(p), base.row_to_bitvec(p as usize));
        }
        assert_eq!(w.epoch(), 0);
    }

    #[test]
    fn advance_increments_and_preserves_base() {
        let w = world(0.5, DriftLocality::Global);
        let w2 = w.advance().advance();
        assert_eq!(w2.epoch(), 2);
        assert_eq!(w.epoch(), 0, "advance is persistent, not in-place");
        assert_eq!(w2.at_epoch(0).row(3), w.row(3));
    }

    #[test]
    fn drift_changes_bits_and_is_deterministic() {
        let w = world(0.5, DriftLocality::Global);
        let a = w.at_epoch(3);
        let b = w.at_epoch(3);
        let mut differs = false;
        for p in 0..24u32 {
            assert_eq!(a.row(p), b.row(p));
            differs |= a.row(p) != w.row(p);
        }
        assert!(differs, "rate 0.5 over 3 epochs must move some bits");
    }

    #[test]
    fn zero_rate_freezes_the_world() {
        let w = world(0.0, DriftLocality::Global);
        let far = w.at_epoch(10);
        for p in 0..24u32 {
            assert_eq!(far.row(p), w.row(p));
        }
    }

    #[test]
    fn window_locality_confines_flips() {
        let w = world(1.0, DriftLocality::Window { start: 8, len: 16 });
        let snap = w.at_epoch(5);
        for p in 0..24u32 {
            for o in 0..64u32 {
                let moved = snap.value(p, o) != w.value(p, o);
                if !(8..24).contains(&(o as usize)) {
                    assert!(!moved, "object {o} outside the window drifted");
                }
            }
        }
    }

    #[test]
    fn mask_locality_confines_flips() {
        let mask = BitVec::from_fn(64, |o| o % 4 == 0);
        let w = world(1.0, DriftLocality::Mask(mask.clone()));
        let snap = w.at_epoch(1);
        for p in 0..24u32 {
            for o in 0..64u32 {
                if snap.value(p, o) != w.value(p, o) {
                    assert!(mask.get(o as usize), "masked-out object {o} drifted");
                }
            }
        }
    }

    #[test]
    fn materialize_at_matches_value_and_row() {
        let w = world(0.2, DriftLocality::Window { start: 4, len: 40 });
        let m = w.materialize_at(4);
        let snap = w.at_epoch(4);
        for p in 0..24u32 {
            assert_eq!(m.row_to_bitvec(p as usize), snap.row(p), "row {p}");
            for o in (0..64u32).step_by(5) {
                assert_eq!(m.get(p as usize, o as usize), snap.value(p, o));
            }
        }
    }

    #[test]
    fn trajectory_matches_per_epoch_materialization() {
        for locality in [
            DriftLocality::Global,
            DriftLocality::Window { start: 10, len: 30 },
            DriftLocality::Mask(BitVec::from_fn(64, |o| o % 2 == 0)),
        ] {
            let w = world(0.15, locality);
            let trajectory = w.materialize_trajectory(4);
            assert_eq!(trajectory.len(), 5);
            for (t, m) in trajectory.iter().enumerate() {
                assert_eq!(m, &w.materialize_at(t as u64), "epoch {t}");
            }
        }
    }

    #[test]
    fn rate_is_quantized_but_close() {
        let s = DriftSchedule::uniform(0.25, 1);
        assert!((s.rate() - 0.25).abs() < 1e-9);
        assert_eq!(DriftSchedule::uniform(2.0, 1).rate(), 1.0, "clamped");
        assert_eq!(DriftSchedule::uniform(-1.0, 1).rate(), 0.0, "clamped");
    }

    #[test]
    fn dense_base_works_too() {
        let dense = base_spec().materialize();
        let schedule = DriftSchedule::uniform(0.4, 9);
        let w = DriftingTruth::new(dense, schedule.clone());
        let p = DriftingTruth::new(crate::truth::ProceduralTruth::new(base_spec()), schedule);
        // Same base bits + same schedule seed ⇒ same drifted world,
        // regardless of backend.
        let (a, b) = (w.at_epoch(2), p.at_epoch(2));
        for player in 0..24u32 {
            assert_eq!(a.row(player), b.row(player));
        }
    }
}
