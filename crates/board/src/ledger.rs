//! Per-player probe accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-player probe counters.
///
/// The paper's budget statements ("each player makes `O(B log^{O(1)} n)`
/// probes, whp" — Lemmas 10–11) are *per-player maxima*, so the ledger keeps
/// one relaxed atomic counter per player; totals and maxima are computed on
/// demand from snapshots.
pub struct ProbeLedger {
    counts: Vec<AtomicU64>,
}

/// Point-in-time copy of all counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerSnapshot {
    counts: Vec<u64>,
}

impl ProbeLedger {
    /// Ledger for `players` players, all counters zero.
    pub fn new(players: usize) -> Self {
        ProbeLedger {
            counts: (0..players).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of players tracked.
    pub fn players(&self) -> usize {
        self.counts.len()
    }

    /// Record one probe by `player`.
    #[inline]
    pub fn record(&self, player: u32) {
        self.counts[player as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Current count for `player`.
    pub fn count(&self, player: u32) -> u64 {
        self.counts[player as usize].load(Ordering::Relaxed)
    }

    /// Largest per-player count — the quantity the paper's probe bounds
    /// constrain.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Total probes across all players.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Copy all counters.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl LedgerSnapshot {
    /// Per-player counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Largest per-player count.
    pub fn max(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Total probes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-player difference `self − earlier` (counts are monotone, so this
    /// measures the probes spent between the two snapshots).
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        assert_eq!(self.counts.len(), earlier.counts.len());
        LedgerSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Max count over a masked subset of players (e.g. honest players only).
    pub fn max_where(&self, include: &[bool]) -> u64 {
        assert_eq!(self.counts.len(), include.len());
        self.counts
            .iter()
            .zip(include)
            .filter(|(_, &inc)| inc)
            .map(|(&c, _)| c)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let l = ProbeLedger::new(3);
        l.record(0);
        l.record(0);
        l.record(2);
        assert_eq!(l.count(0), 2);
        assert_eq!(l.count(1), 0);
        assert_eq!(l.count(2), 1);
        assert_eq!(l.max(), 2);
        assert_eq!(l.total(), 3);
        assert_eq!(l.players(), 3);
    }

    #[test]
    fn snapshot_since() {
        let l = ProbeLedger::new(2);
        l.record(0);
        let s1 = l.snapshot();
        l.record(0);
        l.record(1);
        let s2 = l.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.counts(), &[1, 1]);
        assert_eq!(d.total(), 2);
        assert_eq!(d.max(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let l = ProbeLedger::new(2);
        l.record(1);
        l.reset();
        assert_eq!(l.total(), 0);
    }

    #[test]
    fn max_where_masks() {
        let l = ProbeLedger::new(3);
        for _ in 0..5 {
            l.record(1);
        }
        l.record(0);
        let s = l.snapshot();
        assert_eq!(s.max_where(&[true, false, true]), 1);
        assert_eq!(s.max_where(&[true, true, true]), 5);
        assert_eq!(s.max_where(&[false, false, false]), 0);
    }

    #[test]
    fn concurrent_recording() {
        let l = ProbeLedger::new(4);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let l = &l;
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.record(t);
                    }
                });
            }
        });
        assert_eq!(l.total(), 4000);
        assert_eq!(l.max(), 1000);
    }
}
