//! The lightest-bin election protocol.

use byzscore_random::{derive_seed, tags};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BinStrategy;

/// Election configuration.
#[derive(Clone, Debug)]
pub struct ElectionParams {
    /// Bins per round (2 = classic recursive halving).
    pub bins: usize,
    /// Round cap before the deterministic fallback fires. Stalls are
    /// adversarially possible (see [`StallForcer`](crate::StallForcer)), so
    /// termination needs a cap; `4·log₂(n) + 16` is generous.
    pub max_rounds: usize,
}

impl ElectionParams {
    /// Defaults for an `n`-player election.
    pub fn for_players(n: usize) -> Self {
        ElectionParams {
            bins: 2,
            max_rounds: 4 * (usize::BITS - n.max(2).leading_zeros()) as usize + 16,
        }
    }
}

/// Result of one election run.
#[derive(Clone, Debug)]
pub struct ElectionOutcome {
    /// The elected leader.
    pub leader: u32,
    /// Whether the leader is honest (what §7.1's argument is about).
    pub leader_honest: bool,
    /// Rounds played (including stalled rounds).
    pub rounds: usize,
    /// True if the round cap fired and the lowest-index fallback decided.
    pub stalled: bool,
}

/// Run one lightest-bin election over players `0..dishonest.len()`.
///
/// Honest players draw bins from private per-player streams derived from
/// `seed`; the coordinated dishonest players are *rushing* — each round
/// `adversary` observes the complete honest histogram before placing every
/// dishonest ball. The lightest non-empty bin survives (ties break to the
/// lowest bin index, the standard full-information convention). If the
/// survivor set stops shrinking for [`ElectionParams::max_rounds`] rounds
/// total, the lowest-index survivor wins — a deterministic fallback that is
/// *adversary-favourable*, so measured honest-win rates are conservative.
pub fn elect(
    dishonest: &[bool],
    adversary: &dyn BinStrategy,
    params: &ElectionParams,
    seed: u64,
) -> ElectionOutcome {
    let n = dishonest.len();
    assert!(n >= 1, "need at least one player");
    assert!(params.bins >= 2, "need at least two bins");

    let mut survivors: Vec<u32> = (0..n as u32).collect();
    let mut adv_rng = SmallRng::seed_from_u64(derive_seed(seed, &[tags::ELECTION, 0xdead]));
    let mut rounds = 0usize;

    while survivors.len() > 1 && rounds < params.max_rounds {
        rounds += 1;
        let bins = params.bins;

        // Honest players choose privately and simultaneously.
        let mut honest_counts = vec![0usize; bins];
        let mut honest_choice: Vec<(u32, usize)> = Vec::new();
        let mut dishonest_survivors: Vec<u32> = Vec::new();
        for &p in &survivors {
            if dishonest[p as usize] {
                dishonest_survivors.push(p);
            } else {
                let mut r = SmallRng::seed_from_u64(derive_seed(
                    seed,
                    &[tags::ELECTION, tags::PLAYER, u64::from(p), rounds as u64],
                ));
                let b = r.gen_range(0..bins);
                honest_counts[b] += 1;
                honest_choice.push((p, b));
            }
        }

        // Rushing adversary sees the honest histogram, then places balls.
        let adv_picks = adversary.choose(
            rounds,
            &honest_counts,
            dishonest_survivors.len(),
            &mut adv_rng,
        );
        assert_eq!(
            adv_picks.len(),
            dishonest_survivors.len(),
            "strategy must place every dishonest ball"
        );

        let mut totals = honest_counts.clone();
        for &b in &adv_picks {
            assert!(b < bins, "strategy chose bin {b} of {bins}");
            totals[b] += 1;
        }

        // Lightest non-empty bin; ties break to the lowest index.
        let winner = totals
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .min_by_key(|&(b, &c)| (c, b))
            .map(|(b, _)| b)
            .expect("some bin is non-empty");

        let mut next: Vec<u32> = honest_choice
            .iter()
            .filter(|&&(_, b)| b == winner)
            .map(|&(p, _)| p)
            .collect();
        next.extend(
            dishonest_survivors
                .iter()
                .zip(&adv_picks)
                .filter(|&(_, &b)| b == winner)
                .map(|(&p, _)| p),
        );
        next.sort_unstable();
        debug_assert!(!next.is_empty());
        survivors = next;
    }

    let stalled = survivors.len() > 1;
    let leader = survivors[0]; // single survivor, or lowest-index fallback
    ElectionOutcome {
        leader,
        leader_honest: !dishonest[leader as usize],
        rounds,
        stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FollowCrowd, GreedyInfiltrate, HonestLike, StallForcer};

    fn run_many(
        n: usize,
        n_dishonest: usize,
        adversary: &dyn BinStrategy,
        trials: usize,
    ) -> (usize, usize) {
        // Dishonest get the LOW indices: worst case for the lowest-index
        // fallback.
        let dishonest: Vec<bool> = (0..n).map(|p| p < n_dishonest).collect();
        let params = ElectionParams::for_players(n);
        let mut honest_wins = 0;
        let mut stalls = 0;
        for t in 0..trials {
            let out = elect(&dishonest, adversary, &params, t as u64);
            if out.leader_honest {
                honest_wins += 1;
            }
            if out.stalled {
                stalls += 1;
            }
        }
        (honest_wins, stalls)
    }

    #[test]
    fn all_honest_always_elects_honest() {
        let (wins, _) = run_many(33, 0, &HonestLike, 40);
        assert_eq!(wins, 40);
    }

    #[test]
    fn all_dishonest_never_elects_honest() {
        let (wins, _) = run_many(16, 16, &HonestLike, 20);
        assert_eq!(wins, 0);
    }

    #[test]
    fn single_player_trivial() {
        let out = elect(&[false], &HonestLike, &ElectionParams::for_players(1), 7);
        assert_eq!(out.leader, 0);
        assert!(out.leader_honest);
        assert_eq!(out.rounds, 0);
        assert!(!out.stalled);
    }

    #[test]
    fn outcome_deterministic_in_seed() {
        let dishonest: Vec<bool> = (0..64).map(|p| p % 7 == 0).collect();
        let params = ElectionParams::for_players(64);
        let a = elect(&dishonest, &GreedyInfiltrate, &params, 11);
        let b = elect(&dishonest, &GreedyInfiltrate, &params, 11);
        assert_eq!(a.leader, b.leader);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn honest_majority_usually_wins_against_naive_adversaries() {
        // 1/8 dishonest: honest should win clearly more than half the time
        // against the self-defeating FollowCrowd.
        let (wins, _) = run_many(64, 8, &FollowCrowd, 60);
        assert!(wins > 30, "honest wins {wins}/60");
    }

    #[test]
    fn greedy_adversary_does_not_always_win_with_small_fraction() {
        let (wins, _) = run_many(96, 8, &GreedyInfiltrate, 60);
        // Ω(δ^1.65) with δ ≈ 0.9: expect a healthy honest win rate.
        assert!(wins > 20, "honest wins {wins}/60");
    }

    #[test]
    fn stall_forcer_terminates_via_cap() {
        let (_, stalls) = run_many(32, 16, &StallForcer, 20);
        // The stall strategy may trigger the cap; the run must terminate
        // either way (reaching here is the assertion).
        let _ = stalls;
    }

    #[test]
    fn elections_shrink_to_one_without_adversary() {
        let dishonest = vec![false; 128];
        let params = ElectionParams::for_players(128);
        for s in 0..10 {
            let out = elect(&dishonest, &HonestLike, &params, s);
            assert!(!out.stalled, "honest-only elections should not stall");
            assert!(out.rounds <= params.max_rounds);
        }
    }
}
