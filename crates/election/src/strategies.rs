//! Adversarial bin-choice strategies for the lightest-bin game.

use rand::rngs::SmallRng;
use rand::Rng;

/// How the coordinated dishonest players choose bins in one round.
///
/// The adversary is *rushing*: it sees `honest_counts` (how many honest
/// survivors chose each bin this round) before choosing, and places all of
/// its `survivors` balls at once.
pub trait BinStrategy: Send + Sync {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Bin for each of the `survivors` dishonest players still in the game.
    ///
    /// `honest_counts[b]` is the number of honest balls in bin `b`. The
    /// returned vector must have length `survivors` with entries in
    /// `0..honest_counts.len()`.
    fn choose(
        &self,
        round: usize,
        honest_counts: &[usize],
        survivors: usize,
        rng: &mut SmallRng,
    ) -> Vec<usize>;
}

/// Control: dishonest players pick uniformly at random, like honest ones.
pub struct HonestLike;

impl BinStrategy for HonestLike {
    fn name(&self) -> &'static str {
        "honest-like"
    }

    fn choose(
        &self,
        _round: usize,
        honest_counts: &[usize],
        survivors: usize,
        rng: &mut SmallRng,
    ) -> Vec<usize> {
        (0..survivors)
            .map(|_| rng.gen_range(0..honest_counts.len()))
            .collect()
    }
}

/// Everybody piles into the bin with the fewest honest balls.
///
/// Naive: often overloads that bin so it stops being lightest — the exact
/// self-defeating behaviour the paper's "key principle" describes.
pub struct FollowCrowd;

impl BinStrategy for FollowCrowd {
    fn name(&self) -> &'static str {
        "follow-lightest"
    }

    fn choose(
        &self,
        _round: usize,
        honest_counts: &[usize],
        survivors: usize,
        _rng: &mut SmallRng,
    ) -> Vec<usize> {
        let lightest = argmin(honest_counts);
        vec![lightest; survivors]
    }
}

/// Greedy optimal-ish infiltration.
///
/// Joins the bin with the fewest honest balls with as many dishonest
/// players as possible *while keeping it strictly lightest*; sacrifices the
/// rest into the currently heaviest bin. This maximizes the dishonest
/// fraction among survivors round by round.
pub struct GreedyInfiltrate;

impl BinStrategy for GreedyInfiltrate {
    fn name(&self) -> &'static str {
        "greedy-infiltrate"
    }

    fn choose(
        &self,
        _round: usize,
        honest_counts: &[usize],
        survivors: usize,
        _rng: &mut SmallRng,
    ) -> Vec<usize> {
        let target = argmin(honest_counts);
        // Second-lightest honest load determines how much room we have.
        let mut others: Vec<usize> = honest_counts
            .iter()
            .enumerate()
            .filter(|&(b, _)| b != target)
            .map(|(_, &c)| c)
            .collect();
        others.sort_unstable();
        let runner_up = others.first().copied().unwrap_or(usize::MAX);
        // Keep target strictly lighter than the runner-up if possible;
        // if the honest split is tied, still send one infiltrator (ties
        // break toward low bin indices, which may or may not be us).
        let room = runner_up
            .saturating_sub(honest_counts[target])
            .saturating_sub(1);
        let join = room.min(survivors).max(usize::from(survivors > 0));
        let dump = argmax(honest_counts);
        let mut picks = vec![dump; survivors];
        for slot in picks.iter_mut().take(join) {
            *slot = target;
        }
        picks
    }
}

/// Tries to freeze the game: all dishonest players join the bin the honest
/// majority chose, hoping to make every other bin empty so the survivor set
/// never shrinks. Probes the protocol's stall handling.
pub struct StallForcer;

impl BinStrategy for StallForcer {
    fn name(&self) -> &'static str {
        "stall-forcer"
    }

    fn choose(
        &self,
        _round: usize,
        honest_counts: &[usize],
        survivors: usize,
        _rng: &mut SmallRng,
    ) -> Vec<usize> {
        vec![argmax(honest_counts); survivors]
    }
}

fn argmin(xs: &[usize]) -> usize {
    xs.iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmax(xs: &[usize]) -> usize {
    xs.iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn honest_like_in_range() {
        let picks = HonestLike.choose(0, &[3, 5], 10, &mut rng());
        assert_eq!(picks.len(), 10);
        assert!(picks.iter().all(|&b| b < 2));
    }

    #[test]
    fn follow_crowd_targets_lightest() {
        let picks = FollowCrowd.choose(0, &[7, 2, 5], 4, &mut rng());
        assert_eq!(picks, vec![1; 4]);
    }

    #[test]
    fn greedy_respects_room() {
        // Honest: bin0=2, bin1=6. Room = 6-2-1 = 3 infiltrators.
        let picks = GreedyInfiltrate.choose(0, &[2, 6], 5, &mut rng());
        let joined = picks.iter().filter(|&&b| b == 0).count();
        assert_eq!(joined, 3, "must keep bin 0 strictly lightest");
        // Sacrifices land in the heaviest bin.
        assert!(picks.iter().filter(|&&b| b == 1).count() == 2);
    }

    #[test]
    fn greedy_sends_at_least_one_on_tie() {
        let picks = GreedyInfiltrate.choose(0, &[4, 4], 3, &mut rng());
        assert!(picks.contains(&0), "one infiltrator even when tied");
    }

    #[test]
    fn greedy_zero_survivors() {
        assert!(GreedyInfiltrate
            .choose(0, &[1, 2], 0, &mut rng())
            .is_empty());
    }

    #[test]
    fn stall_forcer_joins_majority() {
        let picks = StallForcer.choose(0, &[1, 9], 2, &mut rng());
        assert_eq!(picks, vec![1, 1]);
    }
}
