//! Feige's lightest-bin leader election under rushing adversaries (§7.1).
//!
//! `CalculatePreferences` needs shared random bits that the dishonest
//! players cannot bias. The paper (following Feige \[10\]) elects a leader
//! who publishes the bits; if the election returns an honest leader with
//! constant probability, then Θ(log n) independent repetitions produce at
//! least one honest beacon with high probability, and `RSelect` picks the
//! resulting good candidate at the end.
//!
//! The protocol is the classic *lightest-bin* game: all surviving players
//! simultaneously throw a ball into one of `b` bins; the players in the
//! lightest non-empty bin survive to the next round; repeat until one player
//! remains. "The key principle … is that the lightest bin will have
//! approximately the same fraction of honest players as the original set;
//! the dishonest players cannot bias the fraction … too much, as if they
//! disproportionately join the lightest bin, it will cease to be the
//! lightest" (§7.1).
//!
//! We implement the **full-information, rushing** adversary: in every round
//! the dishonest players observe all honest bin choices *before* making
//! their own, and may coordinate. Several bin strategies of increasing
//! nastiness are provided; experiment E10 measures the honest-win
//! probability against each and compares its decay with the paper's
//! Ω(δ^1.65) reference curve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod protocol;
mod strategies;

pub use protocol::{elect, ElectionOutcome, ElectionParams};
pub use strategies::{BinStrategy, FollowCrowd, GreedyInfiltrate, HonestLike, StallForcer};
