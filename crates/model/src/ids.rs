//! Strongly typed player and object identifiers.

/// Identifier of a player (a row of the preference matrix).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PlayerId(pub u32);

/// Identifier of an object (a column of the preference matrix).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

impl PlayerId {
    /// The player's row index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ObjectId {
    /// The object's column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for PlayerId {
    fn from(v: u32) -> Self {
        PlayerId(v)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

impl std::fmt::Display for PlayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(PlayerId(7).to_string(), "p7");
        assert_eq!(ObjectId(3).to_string(), "o3");
        assert_eq!(PlayerId(7).index(), 7);
        assert_eq!(ObjectId::from(3u32), ObjectId(3));
        assert_eq!(PlayerId::from(9u32), PlayerId(9));
    }
}
