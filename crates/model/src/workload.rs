//! Workload generators for every preference family the paper reasons about.

#[cfg(test)]
use byzscore_bitset::Bits;
use byzscore_bitset::{BitMatrix, BitVec};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Instance, Planted};

/// How planted cluster sizes are distributed.
#[derive(Clone, Debug)]
pub enum Balance {
    /// All clusters the same size (±1).
    Even,
    /// Zipf-like skew with exponent `s`: cluster `i` gets weight `1/(i+1)^s`.
    Zipf(f64),
    /// Explicit sizes; must sum to the player count.
    Sizes(Vec<usize>),
}

/// A generative family of preference matrices.
///
/// Each variant corresponds to a distribution family the paper quantifies
/// over; see the crate docs for the mapping to claims.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Every preference uniformly random: no correlation, collaboration
    /// cannot help (paper §1: "if the preferences are entirely independent,
    /// then collaboration provides no benefit").
    UniformRandom {
        /// Number of players.
        players: usize,
        /// Number of objects.
        objects: usize,
    },

    /// `clusters` groups, each grown from a random center; each member is
    /// the center with at most `diameter/2` random flips, so intra-cluster
    /// pairwise distance is at most `diameter`. This is the structure
    /// assumed by Definition 1 / Lemma 12: every player sits in a set of
    /// size ≥ players/clusters with diameter ≤ `diameter`.
    PlantedClusters {
        /// Number of players.
        players: usize,
        /// Number of objects.
        objects: usize,
        /// Number of clusters (≥ 1).
        clusters: usize,
        /// Target intra-cluster diameter `D`.
        diameter: usize,
        /// Cluster-size distribution.
        balance: Balance,
    },

    /// Exact clone classes: members are *identical* to their center — the
    /// zero-radius regime of Theorem 4.
    CloneClasses {
        /// Number of players.
        players: usize,
        /// Number of objects.
        objects: usize,
        /// Number of classes.
        classes: usize,
        /// Cluster-size distribution.
        balance: Balance,
    },

    /// Clusters with binomial noise: each member flips every center bit
    /// independently with probability `flip_prob` (expected pairwise
    /// distance `2·flip_prob·objects·(1−flip_prob)` — concentration rather
    /// than hard diameter).
    NoisyClones {
        /// Number of players.
        players: usize,
        /// Number of objects.
        objects: usize,
        /// Number of clusters.
        clusters: usize,
        /// Per-bit flip probability in `[0, 0.5]`.
        flip_prob: f64,
    },

    /// The exact adversarial distribution of **Claim 2** (the lower bound):
    /// one special cluster `P` of size `players/budget_b` shares a base
    /// vector except on a hidden special set `S` of `diameter` objects where
    /// each member is random; everyone outside `P` is fully random. No
    /// `budget_b`-budget algorithm can predict members' preferences on `S`,
    /// forcing error ≥ `diameter/4`.
    LowerBound {
        /// Number of players.
        players: usize,
        /// Number of objects.
        objects: usize,
        /// The budget `B` of Claim 2; the planted cluster has `players/B`
        /// members.
        budget_b: usize,
        /// `D`: size of the special object set. Claim 2 needs
        /// `players/4 > D > 2B`.
        diameter: usize,
    },

    /// Two perfectly anti-correlated camps: camp 1 is the complement of
    /// camp 0 (a worst case for naive global majority voting, easy for
    /// clustering).
    Anticorrelated {
        /// Number of players.
        players: usize,
        /// Number of objects.
        objects: usize,
    },
}

impl Workload {
    /// Number of players in the generated instance.
    pub fn players(&self) -> usize {
        match *self {
            Workload::UniformRandom { players, .. }
            | Workload::PlantedClusters { players, .. }
            | Workload::CloneClasses { players, .. }
            | Workload::NoisyClones { players, .. }
            | Workload::LowerBound { players, .. }
            | Workload::Anticorrelated { players, .. } => players,
        }
    }

    /// Number of objects in the generated instance.
    pub fn objects(&self) -> usize {
        match *self {
            Workload::UniformRandom { objects, .. }
            | Workload::PlantedClusters { objects, .. }
            | Workload::CloneClasses { objects, .. }
            | Workload::NoisyClones { objects, .. }
            | Workload::LowerBound { objects, .. }
            | Workload::Anticorrelated { objects, .. } => objects,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Workload::UniformRandom { .. } => "uniform".into(),
            Workload::PlantedClusters {
                clusters, diameter, ..
            } => {
                format!("planted(k={clusters},D={diameter})")
            }
            Workload::CloneClasses { classes, .. } => format!("clones(k={classes})"),
            Workload::NoisyClones {
                clusters,
                flip_prob,
                ..
            } => {
                format!("noisy(k={clusters},q={flip_prob})")
            }
            Workload::LowerBound {
                budget_b, diameter, ..
            } => {
                format!("lowerbound(B={budget_b},D={diameter})")
            }
            Workload::Anticorrelated { .. } => "anticorrelated".into(),
        }
    }

    /// Generate an instance deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let label = self.label();
        match self.clone() {
            Workload::UniformRandom { players, objects } => {
                let truth = BitMatrix::random(&mut rng, players, objects);
                Instance::new(truth, None, label, seed)
            }

            Workload::PlantedClusters {
                players,
                objects,
                clusters,
                diameter,
                balance,
            } => {
                let sizes = cluster_sizes(players, clusters, &balance);
                let (truth, planted) =
                    grow_clusters(&mut rng, players, objects, &sizes, |rng, center| {
                        let mut v = center.clone();
                        let k = rng.gen_range(0..=diameter / 2);
                        v.flip_random_distinct(rng, k.min(objects));
                        v
                    });
                let planted = Planted {
                    target_diameter: diameter,
                    ..planted
                };
                Instance::new(truth, Some(planted), label, seed)
            }

            Workload::CloneClasses {
                players,
                objects,
                classes,
                balance,
            } => {
                let sizes = cluster_sizes(players, classes, &balance);
                let (truth, planted) =
                    grow_clusters(&mut rng, players, objects, &sizes, |_, center| {
                        center.clone()
                    });
                Instance::new(truth, Some(planted), label, seed)
            }

            Workload::NoisyClones {
                players,
                objects,
                clusters,
                flip_prob,
            } => {
                assert!((0.0..=0.5).contains(&flip_prob), "flip_prob in [0, 0.5]");
                let sizes = cluster_sizes(players, clusters, &Balance::Even);
                let (truth, planted) =
                    grow_clusters(&mut rng, players, objects, &sizes, |rng, center| {
                        let mut v = center.clone();
                        for i in 0..objects {
                            if rng.gen_bool(flip_prob) {
                                v.flip(i);
                            }
                        }
                        v
                    });
                // Binomial tails: pairwise distance concentrates below
                // 2·q·(1−q)·m + slack; record a high-probability bound.
                let mean = 2.0 * flip_prob * (1.0 - flip_prob) * objects as f64;
                let slack = 4.0 * mean.max(1.0).sqrt() * (players.max(2) as f64).ln().sqrt();
                let planted = Planted {
                    target_diameter: (mean + slack).ceil() as usize,
                    ..planted
                };
                Instance::new(truth, Some(planted), label, seed)
            }

            Workload::LowerBound {
                players,
                objects,
                budget_b,
                diameter,
            } => {
                assert!(budget_b >= 1, "budget must be ≥ 1");
                let cluster_size = (players / budget_b).max(2);
                let mut truth = BitMatrix::random(&mut rng, players, objects);
                // Special set S of `diameter` distinct objects.
                let mut all: Vec<u32> = (0..objects as u32).collect();
                all.shuffle(&mut rng);
                let mut special: Vec<u32> = all[..diameter.min(objects)].to_vec();
                special.sort_unstable();
                // Planted cluster = players 0..cluster_size, sharing a base
                // vector off S; independent uniform on S (already random).
                let base = BitVec::random(&mut rng, objects);
                for p in 0..cluster_size {
                    let mut row = base.clone();
                    for &s in &special {
                        row.set(s as usize, rng.gen_bool(0.5));
                    }
                    truth.set_row(p, &row);
                }
                let planted = Planted {
                    assignment: (0..players as u32)
                        .map(|p| if (p as usize) < cluster_size { 0 } else { 1 })
                        .collect(),
                    clusters: vec![
                        (0..cluster_size as u32).collect(),
                        (cluster_size as u32..players as u32).collect(),
                    ],
                    centers: vec![base, BitVec::zeros(objects)],
                    target_diameter: diameter,
                    special_objects: Some(special),
                };
                Instance::new(truth, Some(planted), label, seed)
            }

            Workload::Anticorrelated { players, objects } => {
                let center = BitVec::random(&mut rng, objects);
                let anti = center.complement();
                let half = players / 2;
                let rows: Vec<BitVec> = (0..players)
                    .map(|p| {
                        if p < half {
                            center.clone()
                        } else {
                            anti.clone()
                        }
                    })
                    .collect();
                let truth = BitMatrix::from_rows(&rows);
                let planted = Planted {
                    assignment: (0..players as u32)
                        .map(|p| u32::from((p as usize) >= half))
                        .collect(),
                    clusters: vec![
                        (0..half as u32).collect(),
                        (half as u32..players as u32).collect(),
                    ],
                    centers: vec![center, anti],
                    target_diameter: 0,
                    special_objects: None,
                };
                Instance::new(truth, Some(planted), label, seed)
            }
        }
    }
}

/// Split `players` into `clusters` sizes according to `balance`.
fn cluster_sizes(players: usize, clusters: usize, balance: &Balance) -> Vec<usize> {
    assert!(clusters >= 1, "need at least one cluster");
    assert!(players >= clusters, "need at least one player per cluster");
    match balance {
        Balance::Even => {
            let base = players / clusters;
            let extra = players % clusters;
            (0..clusters)
                .map(|i| base + usize::from(i < extra))
                .collect()
        }
        Balance::Zipf(s) => {
            let weights: Vec<f64> = (0..clusters)
                .map(|i| 1.0 / ((i + 1) as f64).powf(*s))
                .collect();
            let total: f64 = weights.iter().sum();
            // Give every cluster at least one player, distribute the rest
            // proportionally, then fix rounding drift.
            let mut sizes: Vec<usize> = weights
                .iter()
                .map(|w| (((players - clusters) as f64) * w / total).floor() as usize + 1)
                .collect();
            let mut assigned: usize = sizes.iter().sum();
            let mut i = 0;
            while assigned < players {
                sizes[i % clusters] += 1;
                assigned += 1;
                i += 1;
            }
            while assigned > players {
                let j = sizes.iter().enumerate().max_by_key(|(_, s)| **s).unwrap().0;
                sizes[j] -= 1;
                assigned -= 1;
            }
            sizes
        }
        Balance::Sizes(sizes) => {
            assert_eq!(
                sizes.iter().sum::<usize>(),
                players,
                "explicit sizes must sum to player count"
            );
            sizes.clone()
        }
    }
}

/// Grow clusters from random centers; `member_of` maps (rng, center) to one
/// member vector. Returns the truth matrix and planted bookkeeping
/// (with `target_diameter` left 0 for the caller to fill).
fn grow_clusters(
    rng: &mut SmallRng,
    players: usize,
    objects: usize,
    sizes: &[usize],
    mut member_of: impl FnMut(&mut SmallRng, &BitVec) -> BitVec,
) -> (BitMatrix, Planted) {
    let mut truth = BitMatrix::zeros(players, objects);
    let mut assignment = vec![0u32; players];
    let mut clusters = Vec::with_capacity(sizes.len());
    let mut centers = Vec::with_capacity(sizes.len());

    // Random player permutation so cluster membership is not index-correlated.
    let mut order: Vec<u32> = (0..players as u32).collect();
    order.shuffle(rng);

    let mut cursor = 0;
    for (c, &size) in sizes.iter().enumerate() {
        let center = BitVec::random(rng, objects);
        let mut members: Vec<u32> = order[cursor..cursor + size].to_vec();
        members.sort_unstable();
        cursor += size;
        for &p in &members {
            let row = member_of(rng, &center);
            truth.set_row(p as usize, &row);
            assignment[p as usize] = c as u32;
        }
        clusters.push(members);
        centers.push(center);
    }
    debug_assert_eq!(cursor, players);

    (
        truth,
        Planted {
            assignment,
            clusters,
            centers,
            target_diameter: 0,
            special_objects: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_shape() {
        let inst = Workload::UniformRandom {
            players: 10,
            objects: 20,
        }
        .generate(1);
        assert_eq!(inst.players(), 10);
        assert_eq!(inst.objects(), 20);
        assert!(inst.planted().is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let w = Workload::PlantedClusters {
            players: 32,
            objects: 64,
            clusters: 4,
            diameter: 6,
            balance: Balance::Even,
        };
        let a = w.generate(99);
        let b = w.generate(99);
        assert_eq!(a.truth(), b.truth());
        let c = w.generate(100);
        assert_ne!(a.truth(), c.truth());
    }

    #[test]
    fn planted_clusters_respect_diameter() {
        let w = Workload::PlantedClusters {
            players: 48,
            objects: 256,
            clusters: 4,
            diameter: 10,
            balance: Balance::Even,
        };
        let inst = w.generate(7);
        let planted = inst.planted().unwrap();
        assert_eq!(planted.clusters.len(), 4);
        for c in 0..4 {
            let diam = inst.truth().diameter_of(&planted.clusters[c]);
            assert!(diam <= 10, "cluster {c} diameter {diam} > 10");
        }
        // Every player assigned exactly once.
        let total: usize = planted.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 48);
    }

    #[test]
    fn clone_classes_are_identical() {
        let w = Workload::CloneClasses {
            players: 30,
            objects: 100,
            classes: 3,
            balance: Balance::Even,
        };
        let inst = w.generate(3);
        let planted = inst.planted().unwrap();
        for (c, members) in planted.clusters.iter().enumerate() {
            for &m in members {
                assert_eq!(
                    inst.truth().row(m as usize).hamming(&planted.centers[c]),
                    0,
                    "member {m} differs from its center"
                );
            }
        }
    }

    #[test]
    fn lower_bound_structure() {
        let w = Workload::LowerBound {
            players: 64,
            objects: 64,
            budget_b: 8,
            diameter: 12,
        };
        let inst = w.generate(11);
        let planted = inst.planted().unwrap();
        let special = planted.special_objects.as_ref().unwrap();
        assert_eq!(special.len(), 12);
        let cluster = &planted.clusters[0];
        assert_eq!(cluster.len(), 8); // players / budget_b
                                      // Members agree with the base off S.
        let base = &planted.centers[0];
        let special_set: std::collections::HashSet<u32> = special.iter().copied().collect();
        for &m in cluster {
            let row = inst.truth().row(m as usize);
            for o in 0..inst.objects() {
                if !special_set.contains(&(o as u32)) {
                    assert_eq!(row.get(o), base.get(o), "player {m} object {o}");
                }
            }
        }
        // Diameter of the planted cluster is at most |S|.
        assert!(inst.truth().diameter_of(cluster) <= 12);
    }

    #[test]
    fn anticorrelated_camps() {
        let inst = Workload::Anticorrelated {
            players: 10,
            objects: 40,
        }
        .generate(5);
        let t = inst.truth();
        assert_eq!(t.row_distance(0, 4), 0);
        assert_eq!(t.row_distance(0, 5), 40);
        assert_eq!(t.row_distance(5, 9), 0);
    }

    #[test]
    fn noisy_clones_within_bound() {
        let w = Workload::NoisyClones {
            players: 40,
            objects: 400,
            clusters: 4,
            flip_prob: 0.02,
        };
        let inst = w.generate(13);
        let planted = inst.planted().unwrap();
        for members in &planted.clusters {
            let diam = inst.truth().diameter_of(members);
            assert!(
                diam <= planted.target_diameter,
                "diameter {diam} > recorded bound {}",
                planted.target_diameter
            );
        }
    }

    #[test]
    fn even_sizes() {
        assert_eq!(cluster_sizes(10, 3, &Balance::Even), vec![4, 3, 3]);
        assert_eq!(cluster_sizes(9, 3, &Balance::Even), vec![3, 3, 3]);
    }

    #[test]
    fn explicit_sizes() {
        assert_eq!(
            cluster_sizes(10, 3, &Balance::Sizes(vec![5, 3, 2])),
            vec![5, 3, 2]
        );
    }

    #[test]
    #[should_panic(expected = "sum to player count")]
    fn bad_explicit_sizes_panic() {
        cluster_sizes(10, 2, &Balance::Sizes(vec![5, 4]));
    }

    proptest! {
        #[test]
        fn prop_zipf_sizes_sum(players in 4usize..200, clusters in 1usize..8, s in 0.1f64..3.0) {
            prop_assume!(players >= clusters);
            let sizes = cluster_sizes(players, clusters, &Balance::Zipf(s));
            prop_assert_eq!(sizes.iter().sum::<usize>(), players);
            prop_assert!(sizes.iter().all(|&x| x >= 1));
            prop_assert_eq!(sizes.len(), clusters);
        }

        #[test]
        fn prop_planted_assignment_consistent(seed in 0u64..50) {
            let w = Workload::PlantedClusters {
                players: 24, objects: 48, clusters: 3, diameter: 4,
                balance: Balance::Even,
            };
            let inst = w.generate(seed);
            let planted = inst.planted().unwrap();
            for (p, &c) in planted.assignment.iter().enumerate() {
                prop_assert!(planted.clusters[c as usize].contains(&(p as u32)));
            }
        }
    }
}
