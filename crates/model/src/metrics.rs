//! Accuracy metrics: rate of error, optimality benchmarks, cluster quality.
//!
//! Definition 1 of the paper calls an algorithm *asymptotically optimal with
//! respect to budget `B`* when every player's output error is within a
//! constant factor of `min D(P)` over sets `P ∋ p` of size ≥ `n/B`. Computing
//! that minimum exactly is infeasible (it is a clique-like optimization), but
//! it is tightly sandwiched:
//!
//! * **lower bound** — any set of `k` players containing `p` has diameter at
//!   least the distance from `p` to its `(k−1)`-th nearest neighbor;
//! * **upper bound** — the diameter of `p` together with its `k−1` nearest
//!   neighbors is achieved by an explicit set.
//!
//! [`opt_bounds`] reports both, and experiment E7 reports approximation
//! ratios against each.

use byzscore_bitset::{BitMatrix, Bits};

/// Per-player error summary: Hamming distance between protocol output `w(p)`
/// and truth `v(p)` (paper §3, "rate of error").
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReport {
    /// `|w(p) − v(p)|` for every evaluated player.
    pub per_player: Vec<usize>,
    /// Worst error over evaluated players — the paper's rate of error.
    pub max: usize,
    /// Mean error.
    pub mean: f64,
    /// 95th-percentile error.
    pub p95: usize,
    /// Number of players evaluated (honest players only, when a mask is
    /// supplied — the paper's guarantees only cover honest players).
    pub evaluated: usize,
}

impl ErrorReport {
    /// Build a report from raw per-player errors.
    pub fn from_errors(mut errors: Vec<usize>) -> Self {
        assert!(!errors.is_empty(), "error report over zero players");
        let max = errors.iter().copied().max().unwrap_or(0);
        let mean = errors.iter().sum::<usize>() as f64 / errors.len() as f64;
        let evaluated = errors.len();
        let idx = ((errors.len() as f64) * 0.95).ceil() as usize - 1;
        errors.sort_unstable();
        let p95 = errors[idx.min(errors.len() - 1)];
        ErrorReport {
            per_player: errors,
            max,
            mean,
            p95,
            evaluated,
        }
    }
}

/// Compare a protocol's output matrix against the truth.
///
/// When `honest` is supplied, only players marked `true` are evaluated —
/// dishonest players' outputs are meaningless and excluded, exactly as in
/// the paper's guarantee ("the *honest* players are still guaranteed
/// near-optimal predictions").
pub fn error_report(output: &BitMatrix, truth: &BitMatrix, honest: Option<&[bool]>) -> ErrorReport {
    assert_eq!(output.rows(), truth.rows(), "row count mismatch");
    assert_eq!(output.cols(), truth.cols(), "column count mismatch");
    let errors: Vec<usize> = (0..truth.rows())
        .filter(|&p| honest.is_none_or(|h| h[p]))
        .map(|p| output.row(p).hamming(&truth.row(p)))
        .collect();
    ErrorReport::from_errors(errors)
}

/// Per-player sandwich bounds on `min_{P ∋ p, |P| ≥ set_size} D(P)`.
#[derive(Clone, Debug)]
pub struct OptBounds {
    /// Lower bound: distance from `p` to its `(set_size−1)`-th nearest
    /// neighbor.
    pub lower: Vec<usize>,
    /// Upper bound: diameter of `p` plus its `set_size−1` nearest neighbors.
    pub upper: Vec<usize>,
}

/// Compute [`OptBounds`] for every player against sets of size `set_size`
/// (the paper's `n/B`).
///
/// Work is `O(n²)` row distances plus one `O(k²)` diameter per player;
/// parallelized over players with scoped threads.
pub fn opt_bounds(truth: &BitMatrix, set_size: usize) -> OptBounds {
    let n = truth.rows();
    assert!(set_size >= 1 && set_size <= n, "set_size in [1, n]");
    let k = set_size - 1; // neighbors besides p

    let mut lower = vec![0usize; n];
    let mut upper = vec![0usize; n];

    let threads = available_threads().min(n.max(1));
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let lower_chunks = lower.chunks_mut(chunk);
        let upper_chunks = upper.chunks_mut(chunk);
        for (t, (lo, up)) in lower_chunks.zip(upper_chunks).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                let mut dists: Vec<(usize, u32)> = Vec::with_capacity(n);
                for (i, (lo_p, up_p)) in lo.iter_mut().zip(up.iter_mut()).enumerate() {
                    let p = start + i;
                    dists.clear();
                    let row_p = truth.row(p);
                    for q in 0..n {
                        if q != p {
                            dists.push((truth.row(q).hamming(&row_p), q as u32));
                        }
                    }
                    if k == 0 {
                        *lo_p = 0;
                        *up_p = 0;
                        continue;
                    }
                    dists.select_nth_unstable(k - 1);
                    *lo_p = dists[k - 1].0;
                    let mut members: Vec<u32> = dists[..k].iter().map(|&(_, q)| q).collect();
                    members.push(p as u32);
                    *up_p = truth.diameter_of(&members);
                }
            });
        }
    });

    OptBounds { lower, upper }
}

/// Quality of a recovered clustering against the planted truth and the
/// paper's structural lemmas (8–9).
#[derive(Clone, Debug)]
pub struct ClusterQuality {
    /// Smallest recovered-cluster size (Lemma 9 requires ≥ n/B).
    pub min_size: usize,
    /// Largest true diameter among recovered clusters (Lemma 9 requires
    /// O(D)).
    pub max_diameter: usize,
    /// Mean true diameter.
    pub mean_diameter: f64,
    /// Number of clusters recovered.
    pub count: usize,
}

/// Measure recovered clusters (player index lists) against the truth matrix.
pub fn cluster_quality(truth: &BitMatrix, clusters: &[Vec<u32>]) -> ClusterQuality {
    assert!(!clusters.is_empty(), "no clusters to evaluate");
    let mut min_size = usize::MAX;
    let mut max_diameter = 0usize;
    let mut sum = 0usize;
    for members in clusters {
        min_size = min_size.min(members.len());
        let d = truth.diameter_of(members);
        max_diameter = max_diameter.max(d);
        sum += d;
    }
    ClusterQuality {
        min_size,
        max_diameter,
        mean_diameter: sum as f64 / clusters.len() as f64,
        count: clusters.len(),
    }
}

/// Approximation ratios of achieved per-player errors against OPT bounds.
///
/// Returns `(vs_lower, vs_upper)`: max over players of `err/max(bound,1)`.
/// `vs_upper ≤ c` certifies a `c`-approximation (the achievable benchmark);
/// `vs_lower` is the pessimistic ratio against the unachievable lower bound.
pub fn approx_ratios(errors: &[usize], bounds: &OptBounds) -> (f64, f64) {
    assert_eq!(errors.len(), bounds.lower.len(), "length mismatch");
    let mut vs_lower: f64 = 0.0;
    let mut vs_upper: f64 = 0.0;
    for (p, &e) in errors.iter().enumerate() {
        vs_lower = vs_lower.max(e as f64 / bounds.lower[p].max(1) as f64);
        vs_upper = vs_upper.max(e as f64 / bounds.upper[p].max(1) as f64);
    }
    (vs_lower, vs_upper)
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |v| v.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Balance, Workload};
    use byzscore_bitset::BitVec;

    #[test]
    fn error_report_basics() {
        let truth = BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, true, false, false]),
            BitVec::from_bools(&[true, false, true, false]),
        ]);
        let mut out = truth.clone();
        out.set(1, 0, false); // one error for player 1
        let r = error_report(&out, &truth, None);
        assert_eq!(r.per_player.len(), 2);
        assert_eq!(r.max, 1);
        assert_eq!(r.mean, 0.5);
        assert_eq!(r.evaluated, 2);
    }

    #[test]
    fn error_report_honest_mask() {
        let truth = BitMatrix::zeros(3, 4);
        let mut out = truth.clone();
        out.set(2, 0, true);
        out.set(2, 1, true);
        let r = error_report(&out, &truth, Some(&[true, true, false]));
        assert_eq!(r.max, 0, "dishonest player 2 must be excluded");
        assert_eq!(r.evaluated, 2);
        let r_all = error_report(&out, &truth, None);
        assert_eq!(r_all.max, 2);
    }

    #[test]
    #[should_panic(expected = "zero players")]
    fn empty_report_panics() {
        ErrorReport::from_errors(vec![]);
    }

    #[test]
    fn p95_computation() {
        let errors: Vec<usize> = (1..=100).collect();
        let r = ErrorReport::from_errors(errors);
        assert_eq!(r.p95, 95);
        assert_eq!(r.max, 100);
    }

    #[test]
    fn opt_bounds_on_clones() {
        // Two exact clone classes: OPT for set_size ≤ class size is 0.
        let inst = Workload::CloneClasses {
            players: 16,
            objects: 64,
            classes: 2,
            balance: Balance::Even,
        }
        .generate(5);
        let b = opt_bounds(inst.truth(), 8);
        assert!(b.lower.iter().all(|&x| x == 0));
        assert!(b.upper.iter().all(|&x| x == 0));
    }

    #[test]
    fn opt_bounds_sandwich() {
        let inst = Workload::PlantedClusters {
            players: 32,
            objects: 128,
            clusters: 4,
            diameter: 8,
            balance: Balance::Even,
        }
        .generate(9);
        let b = opt_bounds(inst.truth(), 8);
        for p in 0..32 {
            assert!(b.lower[p] <= b.upper[p], "player {p}");
            // The planted cluster is a witness: upper ≤ its true diameter.
            let planted_diam = inst.planted_diameter_of(p).unwrap();
            assert!(
                b.upper[p] <= planted_diam.max(b.lower[p]) || b.upper[p] <= 8,
                "upper bound should not exceed planted diameter"
            );
        }
    }

    #[test]
    fn opt_bounds_set_size_one() {
        let inst = Workload::UniformRandom {
            players: 6,
            objects: 32,
        }
        .generate(1);
        let b = opt_bounds(inst.truth(), 1);
        assert!(b.lower.iter().all(|&x| x == 0));
        assert!(b.upper.iter().all(|&x| x == 0));
    }

    #[test]
    fn cluster_quality_measures() {
        let inst = Workload::CloneClasses {
            players: 12,
            objects: 32,
            classes: 3,
            balance: Balance::Even,
        }
        .generate(2);
        let planted = inst.planted().unwrap().clusters.clone();
        let q = cluster_quality(inst.truth(), &planted);
        assert_eq!(q.count, 3);
        assert_eq!(q.min_size, 4);
        assert_eq!(q.max_diameter, 0);
        assert_eq!(q.mean_diameter, 0.0);
    }

    #[test]
    fn approx_ratio_computation() {
        let bounds = OptBounds {
            lower: vec![2, 0],
            upper: vec![4, 1],
        };
        let (lo, up) = approx_ratios(&[8, 3], &bounds);
        assert_eq!(lo, 4.0); // max(8/2, 3/1)
        assert_eq!(up, 3.0); // max(8/4, 3/1)
    }
}
