//! Examples package; binaries live in the package root.
