//! Byzantine showcase: a colluding clique tries four different attacks on
//! the scoring system, including hijacking a victim's cluster and rigging
//! the shared randomness through the leader election — the exact threats
//! §7 defends against.
//!
//! ```text
//! cargo run -p byzscore-examples --release --example sybil_attack
//! ```

use std::sync::Arc;

use byzscore::{Algorithm, ProtocolParams, Session};
use byzscore_adversary::{AntiMajority, ClusterHijacker, Corruption, Inverter, Sleeper, Strategy};
use byzscore_election::{GreedyInfiltrate, StallForcer};
use byzscore_model::{Balance, Workload};

fn main() {
    let n = 120;
    let m = 360;
    let budget = 4;
    let d = 8;

    let instance = Workload::PlantedClusters {
        players: n,
        objects: m,
        clusters: 4,
        diameter: d,
        balance: Balance::Even,
    }
    .generate(13);

    let threshold = Corruption::paper_threshold(n, budget);
    println!("== sybil attack lab: n={n}, m={m}, B={budget}, D={d} ==");
    println!("paper tolerance: n/(3B) = {threshold} dishonest players\n");

    let victim = instance.planted().unwrap().clusters[0][0];
    let attacks: Vec<(&str, Arc<dyn Strategy>, Corruption)> = vec![
        (
            "inverters (random seats)",
            Arc::new(Inverter),
            Corruption::Count { count: threshold },
        ),
        (
            "anti-majority colluders",
            Arc::new(AntiMajority),
            Corruption::Count { count: threshold },
        ),
        (
            "sleeper agents",
            Arc::new(Sleeper),
            Corruption::Count { count: threshold },
        ),
        (
            "cluster hijack on one victim",
            Arc::new(ClusterHijacker { victim }),
            Corruption::InCluster {
                cluster: 0,
                count: threshold / 2,
            },
        ),
    ];

    let params = ProtocolParams::with_budget(budget);
    for (label, strategy, corruption) in attacks {
        let outcome = Session::builder()
            .instance(&instance)
            .params(params.clone())
            .adversary_shared(corruption, strategy)
            .election_adversary(GreedyInfiltrate)
            .build()
            .run(Algorithm::Robust, 71);
        let honest_leaders = outcome
            .repetitions
            .iter()
            .filter(|r| r.leader_honest)
            .count();
        println!(
            "{label:>30}: worst honest error {:>3} (mean {:>5.2}); \
             {honest_leaders}/{} elections returned honest leaders",
            outcome.errors.max,
            outcome.errors.mean,
            outcome.repetitions.len(),
        );
    }

    // And the election-stalling adversary, for completeness.
    let outcome = Session::builder()
        .instance(&instance)
        .params(params.clone())
        .adversary(Corruption::Count { count: threshold }, Inverter)
        .election_adversary(StallForcer)
        .build()
        .run(Algorithm::Robust, 73);
    println!(
        "{:>30}: worst honest error {:>3} (stalled elections: {})",
        "inverters + election staller",
        outcome.errors.max,
        outcome
            .repetitions
            .iter()
            .filter(|r| r.election_rounds >= 40)
            .count(),
    );

    println!(
        "\nEvery attack stays within the O(D) error envelope — the victim's \
         cluster out-votes its infiltrators and bad leaders are discarded by \
         the final RSelect, exactly as Theorem 14 promises."
    );
}
