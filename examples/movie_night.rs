//! Collaborative filtering flavor: a community predicting personal movie
//! ratings (like/dislike) from a shared pool of partial ratings —
//! exercising workloads beyond clean planted clusters: Zipf-skewed taste
//! groups, binomial noise, and the structure-free worst case.
//!
//! ```text
//! cargo run -p byzscore-examples --release --example movie_night
//! ```

use byzscore::{Algorithm, ProtocolParams, Session};
use byzscore_model::{Balance, Workload};

fn main() {
    let people = 150;
    let movies = 450;

    let worlds = vec![
        (
            "five Zipf taste groups, D=12",
            Workload::PlantedClusters {
                players: people,
                objects: movies,
                clusters: 5,
                diameter: 12,
                balance: Balance::Zipf(1.0),
            },
        ),
        (
            "noisy clones (2% per-movie noise)",
            Workload::NoisyClones {
                players: people,
                objects: movies,
                clusters: 5,
                flip_prob: 0.02,
            },
        ),
        (
            "two warring camps (anticorrelated)",
            Workload::Anticorrelated {
                players: people,
                objects: movies,
            },
        ),
        (
            "no structure at all (uniform random)",
            Workload::UniformRandom {
                players: people,
                objects: movies,
            },
        ),
    ];

    // Budget must respect the smallest taste group: Definition 1 needs a
    // cluster of ≥ n/B like-minded people around everyone. Zipf(1.0) over 5
    // groups leaves the smallest with ~13 of 150 members, so B = 12.
    let params = ProtocolParams::with_budget(12);
    println!("== movie night: {people} people, {movies} movies, budget B=12 ==\n");

    for (label, workload) in worlds {
        let instance = workload.generate(4242);
        let outcome = Session::builder()
            .instance(&instance)
            .params(params.clone())
            .build()
            .run(Algorithm::CalculatePreferences, 5);
        let per_person = movies as f64;
        println!(
            "{label:>38}: worst {:>3} wrong ({:>4.1}%), mean {:>6.2}, probes ≤ {}",
            outcome.errors.max,
            100.0 * outcome.errors.max as f64 / per_person,
            outcome.errors.mean,
            outcome.max_honest_probes,
        );
    }

    println!(
        "\nWith structure the protocol recovers preferences almost exactly; \
         with none (uniform random) no algorithm can help — §1's observation \
         that collaboration only pays when tastes correlate."
    );
}
