//! The paper's motivating scenario (§1): a program committee where every
//! reviewer wants an opinion on *every* submission, but nobody can read
//! them all — and some reviewers are too busy to really read anything,
//! submitting effectively random scores.
//!
//! 60 reviewers, 300 submissions, three taste "schools" (theory, systems,
//! ML) with mild intra-school disagreement. Six overloaded reviewers score
//! at random. We compare everyone-for-themselves against the collaborative
//! protocol.
//!
//! ```text
//! cargo run -p byzscore-examples --release --example program_committee
//! ```

use byzscore::{Algorithm, ProtocolParams, Session, SweepPoint};
use byzscore_adversary::{Corruption, RandomLiar};
use byzscore_model::{Balance, Workload};

fn main() {
    let reviewers = 60;
    let submissions = 300;

    let instance = Workload::PlantedClusters {
        players: reviewers,
        objects: submissions,
        clusters: 3,                 // three schools of taste
        diameter: 10,                // mild intra-school disagreement
        balance: Balance::Zipf(0.7), // theory school is the biggest, of course
    }
    .generate(1337);

    // Busy reviewers: they "read" by coin flip.
    let busy = RandomLiar { flip_prob: 0.5 };
    let corruption = Corruption::Count { count: 6 };

    // The smallest school (Zipf tail) has ~13 members, so the budget must
    // satisfy n/B ≤ 13: B = 5 ⇒ clusters of ≥ 12 are enough.
    let params = ProtocolParams::with_budget(5);
    println!("== PC meeting: {reviewers} reviewers, {submissions} submissions, 6 busy ==\n");

    let session = Session::builder()
        .instance(&instance)
        .params(params.clone())
        .adversary(corruption.clone(), busy)
        .build();
    // All four algorithms are independent: sweep them in parallel.
    let points: Vec<SweepPoint> = [
        Algorithm::Solo,
        Algorithm::GlobalMajority,
        Algorithm::CalculatePreferences,
        Algorithm::Robust,
    ]
    .into_iter()
    .map(|alg| SweepPoint::new(alg, 99))
    .collect();
    for outcome in session.run_sweep(&points) {
        println!(
            "{:>24}: worst reviewer is wrong on {:>3} of {} submissions \
             (mean {:>6.2}), reading {:>5} papers max",
            outcome.algorithm,
            outcome.errors.max,
            submissions,
            outcome.errors.mean,
            outcome.max_honest_probes,
        );
    }

    println!(
        "\nAt committee scale the polylog constants eat the probe savings \
         (that advantage is asymptotic — see experiment E6), but the accuracy \
         gap is dramatic: solo reading {budget} papers or trusting the global \
         majority leaves ~100 wrong opinions per reviewer, while the \
         collaborative protocol is wrong on a handful — with the six busy \
         reviewers simply out-voted.",
        budget = 5 * (60f64.ln().ceil() as usize),
    );
}
