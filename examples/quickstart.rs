//! Quickstart: run the full collaborative-scoring pipeline on a planted
//! world and inspect the outcome.
//!
//! ```text
//! cargo run -p byzscore-examples --release --example quickstart
//! ```

use byzscore::{Algorithm, ProtocolParams, Session};
use byzscore_model::metrics::opt_bounds;
use byzscore_model::{Balance, Workload};

fn main() {
    // A world of 128 players and 384 objects whose tastes form 4 hidden
    // clusters of Hamming diameter 8.
    let instance = Workload::PlantedClusters {
        players: 128,
        objects: 384,
        clusters: 4,
        diameter: 8,
        balance: Balance::Even,
    }
    .generate(2024);

    // Budget B = 4: every player is happy to evaluate ~B·polylog(n) objects,
    // and expects a cluster of ≥ n/B = 32 like-minded players to exist.
    let system = Session::builder()
        .instance(&instance)
        .params(ProtocolParams::with_budget(4))
        .build();

    println!(
        "running CalculatePreferences (Figure 2) on {} players…",
        instance.players()
    );
    let outcome = system.run(Algorithm::CalculatePreferences, 7);

    println!("\n== outcome ==");
    println!("max error   : {} (planted D = 8)", outcome.errors.max);
    println!("mean error  : {:.2}", outcome.errors.mean);
    println!("p95 error   : {}", outcome.errors.p95);
    println!("max probes  : {} per player", outcome.max_honest_probes);
    println!(
        "board posts : {} vectors, {} claims",
        outcome.board.vector_posts, outcome.board.claim_posts
    );
    println!("wall time   : {:?}", outcome.elapsed);

    // How close is that to the best any B-budget algorithm could do
    // (Definition 1)? Sandwich OPT per player and report the ratio.
    let bounds = opt_bounds(instance.truth(), 128 / 4);
    let worst_ub = bounds.upper.iter().max().unwrap();
    println!("\nOPT upper bound (worst player): {worst_ub}");
    println!(
        "approximation vs OPT-ub       : {:.2}×",
        outcome.errors.max as f64 / (*worst_ub).max(1) as f64
    );

    assert!(outcome.errors.max <= 5 * 8, "error should be O(D)");
    println!("\nquickstart OK");
}
