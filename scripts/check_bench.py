#!/usr/bin/env python3
"""Compare a byzscore-bench JSON artifact against the committed baseline.

Usage: check_bench.py BASELINE.json CURRENT.json

Every experiment run is a pure function of its seeds (the determinism test
suite enforces bit-identity across thread counts), so probe counts and
error statistics must match the baseline *exactly* up to float formatting.
Timing columns (headers containing "elapsed", "ms", or "seconds") are
skipped, as are table notes (they embed derived slopes already covered by
the numeric cells). Any other cell drift fails the check loudly — that is
the point: accuracy or probe-complexity regressions must not land
silently (ROADMAP "perf baseline tracking").
"""

import json
import sys

# Numeric cells are compared with a tiny relative tolerance: values are
# deterministic, but libm `ln` may differ in the last ulp across hosts and
# the cells carry only 2-3 formatted decimals anyway.
REL_TOL = 1e-6

TIMING_MARKERS = ("elapsed", " ms", "seconds")


def is_timing(header: str) -> bool:
    h = header.lower()
    return h == "ms" or any(marker in h for marker in TIMING_MARKERS)


def cells_match(a: str, b: str) -> bool:
    if a == b:
        return True
    try:
        fa, fb = float(a), float(b)
    except ValueError:
        return False
    return abs(fa - fb) <= REL_TOL * max(1.0, abs(fa), abs(fb))


def index_tables(doc):
    out = {}
    for exp in doc["experiments"]:
        for table in exp["tables"]:
            out[(exp["id"], table["title"])] = table
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    base_tables = index_tables(baseline)
    cur_tables = index_tables(current)
    failures = []

    for key, base in sorted(base_tables.items()):
        exp_id, title = key
        cur = cur_tables.get(key)
        if cur is None:
            failures.append(f"[{exp_id}] table missing: {title!r}")
            continue
        if cur["headers"] != base["headers"]:
            failures.append(f"[{exp_id}] headers changed in {title!r}")
            continue
        if len(cur["rows"]) != len(base["rows"]):
            failures.append(
                f"[{exp_id}] row count {len(cur['rows'])} != baseline "
                f"{len(base['rows'])} in {title!r}"
            )
            continue
        for r, (brow, crow) in enumerate(zip(base["rows"], cur["rows"])):
            for header, bcell, ccell in zip(base["headers"], brow, crow):
                if is_timing(header):
                    continue
                if not cells_match(bcell, ccell):
                    failures.append(
                        f"[{exp_id}] {title!r} row {r} col {header!r}: "
                        f"baseline {bcell!r} != current {ccell!r}"
                    )

    for key in sorted(set(cur_tables) - set(base_tables)):
        print(f"note: new table not in baseline (regenerate it): {key}")

    if failures:
        print(f"BENCH REGRESSION: {len(failures)} mismatch(es)")
        for f_ in failures[:50]:
            print("  " + f_)
        if len(failures) > 50:
            print(f"  ... and {len(failures) - 50} more")
        print(
            "If the change is intentional, regenerate the baseline:\n"
            "  cargo run --release -p byzscore-bench --bin run_all -- "
            "--scale quick --threads 2 --json BENCH_baseline.json"
        )
        sys.exit(1)
    print(
        f"bench check OK: {len(base_tables)} table(s) match the baseline "
        "(timing columns skipped)"
    )


if __name__ == "__main__":
    main()
