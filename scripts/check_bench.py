#!/usr/bin/env python3
"""Compare a byzscore-bench JSON artifact against the committed baseline.

Usage:
  check_bench.py BASELINE.json CURRENT.json [--tol COLUMN=REL ...] [--timing-report]
  check_bench.py --timing-summary ARTIFACT.json
  check_bench.py --self-test

Every experiment run is a pure function of its seeds (the determinism test
suite enforces bit-identity across thread counts), so probe counts and
error statistics must match the baseline *exactly* up to float formatting.
Timing columns (headers containing "elapsed", "ms", or "seconds") are
skipped, as are explicitly report-only columns (REPORT_ONLY_MARKERS —
throughput rates like e17's "reqs/sec" are wall-clock in disguise) and
table notes (they embed derived slopes already covered by the numeric
cells). Any other cell drift fails the check loudly — that is
the point: accuracy or probe-complexity regressions must not land
silently (ROADMAP "perf baseline tracking").

Per-column tolerances: numeric columns default to REL_TOL (float-formatting
slack only). A column can be given a wider relative tolerance either in
COLUMN_TOLERANCES below (matched as a case-insensitive substring of the
header) or on the command line with --tol 'mean err=0.05'. On failure the
mismatching tables are also rendered as a unified diff so the drift is
readable at a glance.

--timing-report additionally prints a per-experiment wall-clock comparison
(baseline `seconds` vs current, with the ratio) and flags experiments that
moved beyond a generous tolerance (TIMING_FLAG_RATIO). It is report-only:
timing never gates — wall-clock is host- and contention-dependent — but
the committed BENCH_*.json artifacts carry `seconds`, so the report turns
them into a perf trajectory across commits.

--timing-summary prints the per-experiment `seconds` of a SINGLE artifact
(no baseline needed): the weekly full-scale CI run has no committed
full-scale baseline to diff against, so its trajectory is the sequence of
these summaries across retained artifacts.

An experiment present in the baseline but absent from the current
artifact fails the check even when it contributed no tables — a silently
dropped registry entry must not pass the gate.
"""

import difflib
import json
import sys

# Numeric cells are compared with a tiny relative tolerance by default:
# values are deterministic, but libm `ln` may differ in the last ulp across
# hosts and the cells carry only 2-3 formatted decimals anyway.
REL_TOL = 1e-6

# Built-in per-column relative tolerances, matched as case-insensitive
# substrings of the column header (first match wins, checked in order).
# Deterministic columns deliberately get none — add entries here (or pass
# --tol) only for columns that are genuinely host-dependent.
#
# "peak candidate bytes" (e13) is the summed per-player peak residency of
# the streaming RSelect tournaments — a pure function of the seeds, pinned
# bit-identical across thread counts by tests/determinism.rs — so it gates
# EXACTLY (0.0 tolerance, listed explicitly so nobody mistakes a memory
# column for a host-dependent one and widens it).
COLUMN_TOLERANCES: list[tuple[str, float]] = [
    ("peak candidate bytes", 0.0),
]

TIMING_MARKERS = ("elapsed", " ms", "seconds")

# Columns that are machine-dependent without being timing-named: derived
# rates whose numerator is deterministic but whose denominator is
# wall-clock (e17's request throughput). Matched as case-insensitive
# substrings of the header, like TIMING_MARKERS.
REPORT_ONLY_MARKERS = ("reqs/sec",)

# --timing-report flags experiments whose wall-clock moved by more than
# this factor in either direction. Deliberately generous: it is a
# trajectory report, not a gate.
TIMING_FLAG_RATIO = 1.5

# Below this many seconds on both sides an experiment is scheduling noise:
# its ratio is printed but never flagged (and a zero baseline cannot
# produce an inf ratio that flags forever).
TIMING_NOISE_FLOOR_S = 0.1


def is_timing(header: str) -> bool:
    h = header.lower()
    return h == "ms" or any(marker in h for marker in TIMING_MARKERS)


def is_report_only(header: str) -> bool:
    h = header.lower()
    return any(marker in h for marker in REPORT_ONLY_MARKERS)


def tolerance_for(header: str, overrides) -> float:
    h = header.lower()
    for pattern, tol in overrides:
        if pattern in h:
            return tol
    for pattern, tol in COLUMN_TOLERANCES:
        if pattern in h:
            return tol
    return REL_TOL


def cells_match(a: str, b: str, rel_tol: float) -> bool:
    if a == b:
        return True
    try:
        fa, fb = float(a), float(b)
    except ValueError:
        return False
    return abs(fa - fb) <= rel_tol * max(1.0, abs(fa), abs(fb))


def index_tables(doc):
    out = {}
    for exp in doc["experiments"]:
        for table in exp["tables"]:
            out[(exp["id"], table["title"])] = table
    return out


def render_rows(table):
    """Rows as aligned text lines (for the unified diff)."""
    lines = [" | ".join(table["headers"])]
    for row in table["rows"]:
        lines.append(" | ".join(row))
    return lines


def table_diff(base, cur, exp_id, title):
    """Readable unified diff of one drifted table."""
    return list(
        difflib.unified_diff(
            render_rows(base),
            render_rows(cur),
            fromfile=f"baseline [{exp_id}] {title}",
            tofile=f"current  [{exp_id}] {title}",
            lineterm="",
        )
    )


def compare_docs(baseline, current, overrides=()):
    """Compare two artifacts; returns (failures, diff_lines, notes)."""
    base_tables = index_tables(baseline)
    cur_tables = index_tables(current)
    failures = []
    diff_lines = []
    notes = []

    # Experiment-level presence first: a registry entry dropped from the
    # current run must fail even if it carried no tables (the table loop
    # below cannot see those), and its tables are skipped to keep the
    # failure list readable.
    cur_ids = {e["id"] for e in current["experiments"]}
    missing_ids = set()
    for exp_id in (e["id"] for e in baseline["experiments"]):
        if exp_id not in cur_ids:
            missing_ids.add(exp_id)
            failures.append(f"[{exp_id}] experiment missing from current artifact")

    for key, base in sorted(base_tables.items()):
        exp_id, title = key
        if exp_id in missing_ids:
            continue
        cur = cur_tables.get(key)
        if cur is None:
            failures.append(f"[{exp_id}] table missing: {title!r}")
            continue
        if cur["headers"] != base["headers"]:
            failures.append(f"[{exp_id}] headers changed in {title!r}")
            diff_lines += table_diff(base, cur, exp_id, title)
            continue
        if len(cur["rows"]) != len(base["rows"]):
            failures.append(
                f"[{exp_id}] row count {len(cur['rows'])} != baseline "
                f"{len(base['rows'])} in {title!r}"
            )
            diff_lines += table_diff(base, cur, exp_id, title)
            continue
        table_failed = False
        for r, (brow, crow) in enumerate(zip(base["rows"], cur["rows"])):
            for header, bcell, ccell in zip(base["headers"], brow, crow):
                if is_timing(header) or is_report_only(header):
                    continue
                tol = tolerance_for(header, overrides)
                if not cells_match(bcell, ccell, tol):
                    table_failed = True
                    failures.append(
                        f"[{exp_id}] {title!r} row {r} col {header!r}: "
                        f"baseline {bcell!r} != current {ccell!r}"
                        + (f" (rel tol {tol:g})" if tol > REL_TOL else "")
                    )
        if table_failed:
            diff_lines += table_diff(base, cur, exp_id, title)

    for key in sorted(set(cur_tables) - set(base_tables)):
        notes.append(f"note: new table not in baseline (regenerate it): {key}")

    return failures, diff_lines, notes


def timing_report(baseline, current):
    """Per-experiment seconds comparison as printable lines (report-only)."""
    base_secs = {e["id"]: e.get("seconds") for e in baseline["experiments"]}
    cur_secs = {e["id"]: e.get("seconds") for e in current["experiments"]}
    lines = ["timing report (informational — wall-clock never gates):"]
    lines.append(f"  {'id':<6} {'baseline s':>11} {'current s':>11} {'ratio':>7}")
    base_total = cur_total = 0.0
    for exp_id in (e["id"] for e in baseline["experiments"]):
        b, c = base_secs.get(exp_id), cur_secs.get(exp_id)
        if b is None or c is None:
            lines.append(f"  {exp_id:<6} {'?':>11} {'?':>11}       - (missing)")
            continue
        base_total += b
        cur_total += c
        if b <= 0:
            lines.append(f"  {exp_id:<6} {b:>11.3f} {c:>11.3f}       -")
            continue
        ratio = c / b
        flag = ""
        if max(b, c) >= TIMING_NOISE_FLOOR_S:
            if ratio > TIMING_FLAG_RATIO:
                flag = f"  SLOWER (>{TIMING_FLAG_RATIO}x)"
            elif ratio < 1.0 / TIMING_FLAG_RATIO:
                flag = f"  faster (<1/{TIMING_FLAG_RATIO}x)"
        lines.append(f"  {exp_id:<6} {b:>11.3f} {c:>11.3f} {ratio:>6.2f}x{flag}")
    for exp_id in sorted(set(cur_secs) - set(base_secs)):
        lines.append(f"  {exp_id:<6} (not in baseline) current {cur_secs[exp_id]:.3f}s")
    if base_total > 0:
        lines.append(
            f"  {'total':<6} {base_total:>11.3f} {cur_total:>11.3f} "
            f"{cur_total / base_total:>6.2f}x"
        )
    return lines


def timing_summary(doc):
    """Per-experiment seconds of one artifact (the weekly @scale runs have
    no committed full-scale baseline; their trajectory is this summary,
    one per retained artifact)."""
    lines = [
        "timing summary (single artifact — informational, wall-clock never gates):",
        f"  scale={doc.get('scale', '?')} threads={doc.get('threads', '?')}",
        f"  {'id':<6} {'seconds':>11}",
    ]
    total = 0.0
    for exp in doc["experiments"]:
        secs = exp.get("seconds")
        if secs is None:
            lines.append(f"  {exp['id']:<6} {'?':>11}")
            continue
        total += secs
        lines.append(f"  {exp['id']:<6} {secs:>11.3f}")
    lines.append(f"  {'total':<6} {total:>11.3f}")
    return lines


def parse_args(argv):
    paths = []
    overrides = []
    want_timing = False
    summary = False
    it = iter(argv)
    for arg in it:
        if arg == "--tol":
            spec = next(it, None)
            if spec is None or "=" not in spec:
                sys.exit("--tol expects COLUMN=REL_TOL (e.g. --tol 'mean err=0.05')")
            col, _, tol = spec.partition("=")
            overrides.append((col.strip().lower(), float(tol)))
        elif arg == "--timing-report":
            want_timing = True
        elif arg == "--timing-summary":
            summary = True
        else:
            paths.append(arg)
    if summary:
        if len(paths) != 1 or overrides or want_timing:
            sys.exit("--timing-summary expects exactly one artifact path")
        return paths, [], False, True
    if len(paths) != 2:
        sys.exit(__doc__)
    return paths, overrides, want_timing, False


def main():
    paths, overrides, want_timing, summary = parse_args(sys.argv[1:])
    if summary:
        with open(paths[0]) as f:
            for line in timing_summary(json.load(f)):
                print(line)
        return
    base_path, cur_path = paths
    with open(base_path) as f:
        baseline = json.load(f)
    with open(cur_path) as f:
        current = json.load(f)

    failures, diff_lines, notes = compare_docs(baseline, current, overrides)
    for note in notes:
        print(note)

    # Print the (never-gating) timing trajectory before any failure exit so
    # CI artifacts carry it either way.
    if want_timing:
        for line in timing_report(baseline, current):
            print(line)

    if failures:
        print(f"BENCH REGRESSION: {len(failures)} mismatch(es)")
        for f_ in failures[:50]:
            print("  " + f_)
        if len(failures) > 50:
            print(f"  ... and {len(failures) - 50} more")
        if diff_lines:
            print("\n--- drifted tables (unified diff, timing columns included) ---")
            for line in diff_lines[:200]:
                print(line)
            if len(diff_lines) > 200:
                print(f"... and {len(diff_lines) - 200} more diff lines")
        print(
            "\nIf the change is intentional, regenerate the baseline:\n"
            "  cargo run --release -p byzscore-bench --bin run_all -- "
            "--scale quick --threads 2 --json BENCH_baseline.json"
        )
        sys.exit(1)

    n_tables = len(index_tables(baseline))
    print(
        f"bench check OK: {n_tables} table(s) match the baseline "
        "(timing columns skipped)"
    )


def self_test():
    """In-process checks of the comparison logic (run from CI)."""

    def doc(rows, headers=("n", "max err", "elapsed ms"), title="T"):
        return {
            "experiments": [
                {"id": "eXX", "tables": [{"title": title, "headers": list(headers), "rows": rows}]}
            ]
        }

    base = doc([["64", "3.00", "10"], ["128", "5.00", "20"]])

    # Identical artifacts pass.
    fails, _, _ = compare_docs(base, base)
    assert not fails, fails

    # Timing drift is ignored.
    fails, _, _ = compare_docs(base, doc([["64", "3.00", "999"], ["128", "5.00", "1"]]))
    assert not fails, fails

    # Float formatting slack within REL_TOL passes.
    fails, _, _ = compare_docs(base, doc([["64", "3.0000000001", "10"], ["128", "5.00", "20"]]))
    assert not fails, fails

    # Real numeric drift fails, with a readable diff.
    drifted = doc([["64", "4.00", "10"], ["128", "5.00", "20"]])
    fails, diff, _ = compare_docs(base, drifted)
    assert len(fails) == 1 and "max err" in fails[0], fails
    assert any(line.startswith("-64 | 3.00") for line in diff), diff
    assert any(line.startswith("+64 | 4.00") for line in diff), diff

    # A per-column tolerance override absorbs the same drift.
    fails, _, _ = compare_docs(base, drifted, overrides=[("max err", 0.5)])
    assert not fails, fails
    # ...but not drift beyond it.
    fails, _, _ = compare_docs(
        base, doc([["64", "9.00", "10"], ["128", "5.00", "20"]]), overrides=[("max err", 0.5)]
    )
    assert len(fails) == 1, fails

    # Missing tables and row-count changes fail.
    fails, _, _ = compare_docs(base, {"experiments": []})
    assert len(fails) == 1 and "missing" in fails[0], fails
    fails, _, _ = compare_docs(base, doc([["64", "3.00", "10"]]))
    assert len(fails) == 1 and "row count" in fails[0], fails

    # Non-numeric cells must match exactly.
    base_s = doc([["64", "ok", "10"]])
    fails, _, _ = compare_docs(base_s, doc([["64", "bad", "10"]]))
    assert len(fails) == 1, fails

    # The memory column gates exactly: its built-in 0.0 tolerance beats the
    # default REL_TOL slack, so even sub-REL_TOL drift in peak candidate
    # bytes fails (residency is deterministic; any drift is a real change).
    mem_headers = ("n", "peak candidate bytes", "elapsed ms")
    mem_base = doc([["1000", "1048576", "10"]], headers=mem_headers)
    fails, _, _ = compare_docs(mem_base, doc([["1000", "1048576", "99"]], headers=mem_headers))
    assert not fails, fails
    fails, _, _ = compare_docs(
        mem_base, doc([["1000", "1048576.001", "10"]], headers=mem_headers)
    )
    assert len(fails) == 1 and "peak candidate bytes" in fails[0], fails

    # Report-only rate columns (e17 "reqs/sec") never gate, but their
    # deterministic neighbors — hex digests, rejected counts — still do:
    # digests are non-numeric, so they must match EXACTLY.
    svc_headers = ("shards", "reqs/sec", "p50 ms", "digest")
    svc_base = doc([["8", "5000.00", "0.1600", "ae1c51929c5e0fad"]], headers=svc_headers)
    fails, _, _ = compare_docs(
        svc_base, doc([["8", "9999.99", "0.9999", "ae1c51929c5e0fad"]], headers=svc_headers)
    )
    assert not fails, fails
    fails, _, _ = compare_docs(
        svc_base, doc([["8", "5000.00", "0.1600", "ae1c51929c5e0fae"]], headers=svc_headers)
    )
    assert len(fails) == 1 and "digest" in fails[0], fails

    # New tables are reported as notes, not failures.
    extra = doc([["64", "3.00", "10"], ["128", "5.00", "20"]])
    extra["experiments"].append(
        {"id": "eYY", "tables": [{"title": "new", "headers": ["a"], "rows": [["1"]]}]}
    )
    fails, _, notes = compare_docs(base, extra)
    assert not fails and len(notes) == 1, (fails, notes)

    # Timing report: report-only lines, flags big moves both ways, totals.
    def timed(seconds_by_id):
        return {
            "experiments": [
                {"id": i, "seconds": s, "tables": []} for i, s in seconds_by_id.items()
            ]
        }

    report = timing_report(
        timed({"e01": 1.0, "e13": 400.0}), timed({"e01": 1.1, "e13": 60.0})
    )
    text = "\n".join(report)
    assert "never gates" in text, text
    assert "faster" in text and "e13" in text, text
    assert "SLOWER" not in text, text
    report = timing_report(timed({"e01": 1.0}), timed({"e01": 9.0}))
    assert any("SLOWER" in line for line in report), report
    report = timing_report(timed({"e01": 1.0}), timed({"e02": 1.0}))
    assert any("missing" in line for line in report), report
    assert any("not in baseline" in line for line in report), report
    # Sub-noise-floor experiments and zero baselines never flag.
    report = timing_report(
        timed({"e04": 0.002, "e05": 0.0}), timed({"e04": 0.03, "e05": 0.01})
    )
    assert not any("SLOWER" in line for line in report), report
    assert not any("infx" in line for line in report), report

    # e18's fault-recovery tables gate EVERY cell: the hex digest column
    # and the yes/NO "matches traces/DIGESTS" verdict are non-numeric, so
    # a single flipped nibble — or a verdict flip the digest cell would
    # already catch — fails exactly. No report-only columns in e18.
    rec_headers = ("kill at", "crash phase", "recovered ops", "digest", "matches traces/DIGESTS")
    rec_base = doc(
        [["11", "between ops", "9", "742004f52561bb35", "yes"]], headers=rec_headers
    )
    fails, _, _ = compare_docs(rec_base, rec_base)
    assert not fails, fails
    fails, _, _ = compare_docs(
        rec_base,
        doc([["11", "between ops", "9", "742004f52561bb34", "yes"]], headers=rec_headers),
    )
    assert len(fails) == 1 and "digest" in fails[0], fails
    fails, _, _ = compare_docs(
        rec_base,
        doc([["11", "between ops", "9", "742004f52561bb35", "NO"]], headers=rec_headers),
    )
    assert len(fails) == 1 and "matches traces/DIGESTS" in fails[0], fails

    # e19's compaction table gates the tail bound alongside the digest:
    # "tail ops" is numeric (so it gates at REL_TOL — an inflated tail
    # means compaction stopped bounding recovery), "tail ≤ every" and
    # the digest are non-numeric and must match exactly.
    cmp_headers = (
        "every", "kill at", "checkpoints", "truncated ops", "tail ops",
        "tail ≤ every", "digest", "matches traces/DIGESTS",
    )
    cmp_base = doc(
        [["4", "34", "10", "40", "2", "yes", "742004f52561bb35", "yes"]],
        headers=cmp_headers,
    )
    fails, _, _ = compare_docs(cmp_base, cmp_base)
    assert not fails, fails
    fails, _, _ = compare_docs(
        cmp_base,
        doc(
            [["4", "34", "10", "40", "2", "yes", "742004f52561bb45", "yes"]],
            headers=cmp_headers,
        ),
    )
    assert len(fails) == 1 and "digest" in fails[0], fails
    fails, _, _ = compare_docs(
        cmp_base,
        doc(
            [["4", "34", "10", "40", "42", "NO", "742004f52561bb35", "yes"]],
            headers=cmp_headers,
        ),
    )
    assert len(fails) == 2, fails
    assert any("tail ops" in f_ for f_ in fails), fails
    assert any("tail ≤ every" in f_ for f_ in fails), fails

    # A whole experiment dropped from the current artifact fails — even
    # when it contributed no tables, the case the per-table loop cannot
    # see (a silently dropped registry entry must not pass the gate).
    tabled = doc([["64", "3.00", "10"]])
    tabled["experiments"].append({"id": "eZZ", "tables": []})
    pruned = doc([["64", "3.00", "10"]])
    fails, _, _ = compare_docs(tabled, pruned)
    assert len(fails) == 1 and "experiment missing" in fails[0], fails
    # Dropping an experiment WITH tables reports once at experiment level
    # (its table mismatches are suppressed as redundant).
    both = doc([["64", "3.00", "10"]])
    both["experiments"].append(
        {"id": "eWW", "tables": [{"title": "w", "headers": ["a"], "rows": [["1"]]}]}
    )
    fails, _, _ = compare_docs(both, pruned)
    assert len(fails) == 1 and "[eWW] experiment missing" in fails[0], fails
    # Same ids on both sides: no presence failure.
    fails, _, _ = compare_docs(tabled, tabled)
    assert not fails, fails

    # Single-artifact timing summary: ids, total, scale header.
    summary = timing_summary(
        {"scale": "full", "threads": 2, "experiments": [
            {"id": "e01", "seconds": 1.5, "tables": []},
            {"id": "e13", "seconds": 400.0, "tables": []},
        ]}
    )
    text = "\n".join(summary)
    assert "scale=full" in text and "e13" in text, text
    assert any("total" in line and "401.500" in line for line in summary), summary

    print("check_bench self-test OK (18 scenarios)")


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
    else:
        main()
