//! Offline shim exposing the
//! [`parking_lot`](https://crates.io/crates/parking_lot) locking API over
//! `std::sync` primitives.
//!
//! The build environment has no crates.io access, so this crate provides
//! the two properties byzscore actually relies on: guard-returning
//! `lock()`/`read()`/`write()` with **no poison `Result`**, and `const`
//! constructors. Poisoned std locks are transparently recovered (byzscore
//! holds locks only around short pure updates, so a panicking holder
//! leaves data in a consistent state).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader–writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access; never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Exclusive write access; never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1u8]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
