//! Offline shim implementing the subset of
//! [`proptest`](https://crates.io/crates/proptest) that byzscore's
//! property tests use: the [`proptest!`] macro over functions whose
//! arguments are drawn from integer/float **range strategies**, plus
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * No shrinking and no failure persistence — a failing case panics with
//!   the generated arguments in the message instead.
//! * Case generation is **deterministic**: the RNG is seeded from the
//!   test function's name, so failures reproduce exactly under plain
//!   `cargo test` with no regression file.
//! * Only range strategies (`lo..hi`, `lo..=hi`) are implemented because
//!   those are the only strategies the workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy abstraction: anything a `proptest!` argument can be drawn from.
pub mod strategy {
    /// A value source for one macro argument.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draw one value from `bits` (a fresh 64-bit random word per call).
        fn sample(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as $t
                        * (1.0 / (1u64 << 53) as $t);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);
}

/// Runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Subset of upstream `ProptestConfig`: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps whole-protocol properties
            // fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the property name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a property function's name (FNV-1a over the bytes).
        pub fn for_property(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)` via widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

/// Everything the tests `use proptest::prelude::*;` for.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property; panics (no shrinking) with the condition text.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skip the current generated case when its precondition fails.
///
/// Expands to `continue` targeting the per-case loop the [`proptest!`]
/// macro generates, so it is only meaningful directly inside a property
/// body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_props! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_props! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_props {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_property(stringify!($name));
                for _case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Range strategies stay in bounds and assumptions skip cases.
        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0u64..=5, f in 0.5f64..2.0) {
            prop_assume!(a != 9);
            prop_assert!((3..10).contains(&a) && a != 9);
            prop_assert!(b <= 5);
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert_eq!(a, a);
            prop_assert_ne!(f, -1.0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i32..100) {
            prop_assert!(x >= 0, "got {x}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_property("p");
        let mut b = crate::test_runner::TestRng::for_property("p");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_property("q");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
