//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *interface* the byzscore crates actually consume — nothing
//! more. The implementation is original: [`rngs::SmallRng`] is
//! xoshiro256++ (the same algorithm family rand 0.8 uses on 64-bit
//! targets) seeded through SplitMix64, [`Rng::gen_range`] uses the
//! widening-multiply bounded-integer method, and [`Rng::gen_bool`] uses the
//! 53-bit mantissa trick.
//!
//! Determinism matters more than stream compatibility here: byzscore's
//! tests assert *self*-consistency (same seed ⇒ same stream) and
//! statistical health, never specific rand-crate output values, so the
//! shim only has to be a good deterministic PRNG behind the same names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random bits (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (stands in
/// for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`] (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded integer via 128-bit widening multiply; the
/// residual bias is `span / 2^64`, far below anything the simulations or
/// their statistical tests can observe.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods over any [`RngCore`] (subset of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 ≤ p ≤ 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the
    /// recommended seeding path everywhere in this workspace).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step: used for seed expansion.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic RNG: xoshiro256++ (the algorithm
    /// family `rand 0.8` uses for `SmallRng` on 64-bit targets).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = crate::SampleRange::sample_from(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..500).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..500).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items = [10u32, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use super::RngCore;
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
