//! Offline shim implementing the subset of
//! [`criterion`](https://crates.io/crates/criterion) that byzscore's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery this shim runs a short
//! warm-up, sizes the measurement loop to a time target, and reports the
//! median of a few batches in ns/iter (plus MB/s when a byte throughput
//! is declared). When invoked with `--test` (as `cargo test` does for
//! bench targets) every benchmark body runs exactly once so benches act
//! as smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared work per iteration, used to derive throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    mode: Mode,
    /// Measured nanoseconds per iteration (median of batches).
    ns_per_iter: f64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    /// `--test`: run the body once, skip timing.
    Smoke,
}

impl Bencher {
    /// Measure `f`, called in a loop; the timing excludes loop setup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(f());
            return;
        }
        // Warm up and estimate the cost of one call.
        let warmup_start = Instant::now();
        let mut calls = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(f());
            calls += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / calls as f64).max(1.0);
        // Size batches to ~40ms each, 5 batches, report the median.
        let per_batch = ((40.0e6 / est_ns) as u64).clamp(1, 1 << 24);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim's fixed batching
    /// ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an input handle (the input is simply passed
    /// through to the closure).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion
            .run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// End the group (upstream renders summaries here; the shim prints
    /// per-benchmark lines eagerly instead).
    pub fn finish(self) {}
}

/// Conversion of the various id forms benches pass to `bench_*`.
pub trait IntoLabel {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke { Mode::Smoke } else { Mode::Measure },
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.run_one(&label, None, &mut f);
        self
    }

    fn run_one(
        &self,
        label: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            mode: self.mode,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        if self.mode == Mode::Smoke {
            println!("{label}: ok (smoke)");
            return;
        }
        let ns = bencher.ns_per_iter;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if ns > 0.0 => {
                format!("  ({:.1} MB/s)", b as f64 / ns * 1.0e9 / 1.0e6)
            }
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                format!("  ({:.1} Melem/s)", e as f64 / ns * 1.0e9 / 1.0e6)
            }
            _ => String::new(),
        };
        println!("{label}: {ns:.0} ns/iter{rate}");
    }
}

/// Bundle benchmark functions under one group name (upstream-compatible
/// call shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("full", 1024).label, "full/1024");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let criterion = Criterion { mode: Mode::Smoke };
        let mut calls = 0;
        criterion.run_one("t", None, &mut |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_times_body() {
        let criterion = Criterion {
            mode: Mode::Measure,
        };
        let mut ran = false;
        criterion.run_one("t", Some(Throughput::Bytes(8)), &mut |b| {
            b.iter(|| std::hint::black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
