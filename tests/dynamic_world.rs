//! Dynamic-world contracts: the drift law has exactly one dense replay,
//! adaptive corruption degrades exactly to its static base, churn
//! remapping is a permutation-free identity view, and whole trajectories
//! are substrate-agnostic (dense pool ≡ procedural pool, bit for bit).

use std::sync::Arc;

use byzscore::{
    Algorithm, ChurnSchedule, ClusterSpec, DriftLocality, DriftSchedule, DriftingTruth,
    DynamicWorld, ProceduralTruth, ProtocolParams, RemappedTruth, TruthSource,
};
use byzscore_adversary::{AdaptiveCorruption, AdaptivePolicy, Corruption, Inverter, Observation};
use byzscore_bitset::{BitMatrix, BitVec};
use byzscore_model::{Balance, Workload};
use proptest::prelude::*;

fn spec(players: usize, objects: usize, seed: u64) -> ClusterSpec {
    ClusterSpec {
        players,
        objects,
        clusters: 3,
        diameter: 4,
        seed,
    }
}

proptest! {
    /// `materialize_at(t)` is THE dense replay of the drift schedule:
    /// start from the materialized base and apply every per-epoch flip
    /// decision (`DriftSchedule::flips`) by hand — the twin must agree on
    /// every bit, for every locality shape.
    #[test]
    fn materialize_at_equals_dense_replay(
        seed in 0u64..40,
        players in 3usize..20,
        objects in 4usize..80,
        epochs in 0u64..6,
        rate_pm in 0u32..1000,
        window_kind in 0u8..3,
    ) {
        let objects_u = objects;
        let locality = match window_kind {
            0 => DriftLocality::Global,
            1 => DriftLocality::Window { start: objects_u / 4, len: objects_u / 2 },
            _ => DriftLocality::Mask(BitVec::from_fn(objects_u, |o| o % 3 != 1)),
        };
        let schedule = DriftSchedule::new(rate_pm as f64 / 1000.0, locality, seed ^ 0xd1f7);
        let base_spec = spec(players, objects, seed);
        let world = DriftingTruth::new(ProceduralTruth::new(base_spec.clone()), schedule.clone());

        // Independent dense replay, straight from the schedule's flip law.
        let mut rows: Vec<BitVec> = {
            let dense = base_spec.materialize();
            (0..players).map(|p| dense.row_to_bitvec(p)).collect()
        };
        for e in 1..=epochs {
            for (p, row) in rows.iter_mut().enumerate() {
                for o in 0..objects_u {
                    if schedule.flips(e, p as u32, o as u32) {
                        row.flip(o);
                    }
                }
            }
        }
        let replay = BitMatrix::from_rows(&rows);

        prop_assert_eq!(&world.materialize_at(epochs), &replay);
        // And probing the pinned snapshot agrees bit for bit.
        let snap = world.at_epoch(epochs);
        for p in 0..players as u32 {
            prop_assert_eq!(snap.row(p), replay.row_to_bitvec(p as usize));
        }
    }

    /// A zero observation window reduces `AdaptiveCorruption` exactly to
    /// the static `Corruption` it wraps — identical masks for every seed,
    /// every base model, whatever the history contains.
    #[test]
    fn zero_window_adaptive_is_the_static_base(
        seed in 0u64..60,
        n in 8usize..64,
        variant in 0u8..4,
        hist_len in 0usize..4,
    ) {
        let count = 1 + n / 8;
        let base = match variant {
            0 => Corruption::None,
            1 => Corruption::Count { count },
            2 => Corruption::FirstK { count },
            _ => Corruption::RandomFraction { fraction: 0.25 },
        };
        let inst = Workload::PlantedClusters {
            players: n,
            objects: 16,
            clusters: 2,
            diameter: 2,
            balance: Balance::Even,
        }
        .generate(seed);
        let planted = inst.planted();
        let history: Vec<Observation> = (0..hist_len)
            .map(|i| Observation::sizes(vec![i + 1, 2, 3]))
            .collect();
        let adaptive = AdaptiveCorruption::off(base.clone());
        prop_assert_eq!(
            adaptive.select_mask(n, planted, seed, &history),
            base.select_mask(n, planted, seed)
        );
        // A windowed adversary with EMPTY history is also the base.
        let windowed = AdaptiveCorruption::new(base.clone(), 2, AdaptivePolicy::SmallestGroup);
        prop_assert_eq!(
            windowed.select_mask(n, planted, seed, &[]),
            base.select_mask(n, planted, seed)
        );
    }

    /// The adaptive adversary never exceeds the wrapped model's budget,
    /// whatever it observes.
    #[test]
    fn adaptive_preserves_the_budget(
        seed in 0u64..40,
        n in 12usize..48,
        window in 1usize..4,
        smallest in 0usize..3,
    ) {
        let count = 1 + n / 6;
        let inst = Workload::PlantedClusters {
            players: n,
            objects: 16,
            clusters: 3,
            diameter: 2,
            balance: Balance::Even,
        }
        .generate(seed);
        let mut sizes = vec![9, 9, 9];
        sizes[smallest] = 1;
        let adaptive = AdaptiveCorruption::new(
            Corruption::Count { count },
            window,
            AdaptivePolicy::SmallestGroup,
        );
        let (mask, target) = adaptive.select_mask_with_target(
            n,
            inst.planted(),
            seed,
            &[Observation::sizes(sizes)],
        );
        prop_assert_eq!(mask.iter().filter(|&&d| d).count(), count);
        prop_assert_eq!(target, Some(smallest));
    }
}

#[test]
fn remapped_truth_is_an_identity_view() {
    let pool = ProceduralTruth::new(spec(20, 48, 7));
    let dense = pool.materialize();
    let map = vec![19u32, 0, 7, 7, 3];
    let view = RemappedTruth::new(Arc::new(pool), map.clone());
    assert_eq!(view.players(), 5);
    for (slot, &id) in map.iter().enumerate() {
        assert_eq!(view.row(slot as u32), dense.row_to_bitvec(id as usize));
    }
}

/// The full dynamic trajectory — churn + drift + adaptive corruption —
/// is substrate-agnostic: a procedural pool and its materialized dense
/// twin produce bit-identical rounds (outputs, errors, probe ledgers,
/// churn decisions, adaptive targets).
#[test]
fn dynamic_trajectory_is_substrate_agnostic() {
    let pool_spec = spec(60, 64, 0x77);
    let build = |dense: bool| {
        let b = DynamicWorld::builder();
        let b = if dense {
            b.pool_dense(pool_spec.clone())
        } else {
            b.pool(pool_spec.clone())
        };
        b.active(48)
            .params(ProtocolParams::with_budget(4))
            .churn(ChurnSchedule::replacement(5, 0xc0))
            .drift(DriftSchedule::new(
                0.002,
                DriftLocality::Window { start: 8, len: 40 },
                0xdd,
            ))
            .adversary(
                AdaptiveCorruption::new(
                    Corruption::Count { count: 4 },
                    2,
                    AdaptivePolicy::SmallestGroup,
                ),
                Inverter,
            )
            .build()
    };
    for algorithm in [Algorithm::GlobalMajority, Algorithm::CalculatePreferences] {
        let proc_run = build(false).run(algorithm, 3, 0x99);
        let dense_run = build(true).run(algorithm, 3, 0x99);
        assert_eq!(proc_run.rounds.len(), dense_run.rounds.len());
        for (p, d) in proc_run.rounds.iter().zip(&dense_run.rounds) {
            assert_eq!(p.outcome.output, d.outcome.output, "round {}", p.round);
            assert_eq!(p.outcome.errors, d.outcome.errors);
            assert_eq!(p.outcome.probes.counts(), d.outcome.probes.counts());
            assert_eq!(p.retired, d.retired);
            assert_eq!(p.joined, d.joined);
            assert_eq!(p.target_group, d.target_group);
        }
    }
}

/// Churn bookkeeping: the active identity sets evolve exactly as the
/// retire/join log claims, identities are never duplicated, and retired
/// identities never rejoin.
#[test]
fn churn_log_reconstructs_the_population() {
    use std::collections::HashSet;

    let run = DynamicWorld::builder()
        .pool(spec(90, 48, 5))
        .active(60)
        .params(ProtocolParams::with_budget(4))
        .churn(ChurnSchedule {
            retire: 7,
            join: 5,
            seed: 0xfeed,
        })
        .build()
        .run(Algorithm::GlobalMajority, 4, 1);

    let mut active: HashSet<u32> = (0..60).collect();
    let mut gone: HashSet<u32> = HashSet::new();
    for report in &run.rounds {
        for r in &report.retired {
            assert!(active.remove(r), "retired {r} was not active");
            gone.insert(*r);
        }
        for j in &report.joined {
            assert!(!gone.contains(j), "retired identity {j} rejoined");
            assert!(active.insert(*j), "joined {j} twice");
        }
        assert_eq!(report.players, active.len(), "round {}", report.round);
    }
    let sizes: Vec<usize> = run.rounds.iter().map(|r| r.players).collect();
    assert_eq!(sizes, vec![60, 58, 56, 54], "net −2 per churn step");
}

/// Round 0 of any adaptive arm coincides with the static arm (nothing
/// has been observed yet); later rounds may diverge.
#[test]
fn adaptive_round_zero_matches_static() {
    let build = |corruption: AdaptiveCorruption| {
        DynamicWorld::builder()
            .pool(spec(60, 64, 0x15))
            .params(ProtocolParams::with_budget(4))
            .adversary(corruption, Inverter)
            .build()
    };
    let base = Corruption::Count { count: 5 };
    let static_run =
        build(AdaptiveCorruption::off(base.clone())).run(Algorithm::CalculatePreferences, 2, 7);
    let adaptive_run = build(AdaptiveCorruption::new(
        base,
        1,
        AdaptivePolicy::SmallestGroup,
    ))
    .run(Algorithm::CalculatePreferences, 2, 7);
    assert_eq!(
        static_run.rounds[0].outcome.output, adaptive_run.rounds[0].outcome.output,
        "round 0 has nothing to adapt to"
    );
    assert_eq!(adaptive_run.rounds[0].target_group, None);
    assert!(adaptive_run.rounds[1].target_group.is_some());
}

/// Graded drift epochs reconstruct purely.
#[test]
fn graded_drift_reconstruction_is_pure() {
    use byzscore::graded::{DriftingGrades, GradeMatrix};

    let base = GradeMatrix::from_fn(10, 24, 2, |p, o| ((p * 7 + o * 3) % 4) as u8);
    let world = DriftingGrades::new(&base, &DriftSchedule::uniform(0.05, 3));
    assert_eq!(world.at_epoch(0), base);
    assert_eq!(world.at_epoch(4), world.at_epoch(4));
    assert_ne!(world.at_epoch(4), base, "5% over 4 epochs must move grades");
}
