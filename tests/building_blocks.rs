//! Cross-crate behaviour of the Figure-1 blocks composed through the
//! public APIs (complementing each crate's unit tests).

use byzscore_adversary::{Behaviors, Corruption, Inverter};
use byzscore_bitset::{BitVec, Bits};
use byzscore_blocks::{rselect, select_among, small_radius, zero_radius, BlockParams, Ctx};
use byzscore_board::{Board, Oracle};
use byzscore_model::{Balance, Workload};
use byzscore_random::Beacon;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn zero_radius_feeds_small_radius_consistently() {
    // SmallRadius internally runs ZeroRadius per object group; a direct
    // ZeroRadius on a clone world must agree with SmallRadius(D=0-ish).
    let inst = Workload::CloneClasses {
        players: 96,
        objects: 96,
        classes: 3,
        balance: Balance::Even,
    }
    .generate(21);
    let oracle = Oracle::new(inst.truth());
    let board = Board::new();
    let behaviors = Behaviors::all_honest(inst.truth());
    let params = BlockParams::with_budget(3);
    let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(5), &params);
    let players: Vec<u32> = (0..96).collect();
    let objects: Vec<u32> = (0..96).collect();

    let zr = zero_radius(&ctx, &players, &objects, 3, &[1]);
    let sr = small_radius(&ctx, &players, &objects, 1, &[2]);
    for p in 0..96 {
        assert_eq!(zr[p].hamming(&inst.truth().row(p)), 0, "ZR wrong for {p}");
        assert!(
            sr[p].hamming(&inst.truth().row(p)) <= 2,
            "SR wrong for {p}: {}",
            sr[p].hamming(&inst.truth().row(p))
        );
    }
}

#[test]
fn rselect_and_select_agree_on_clear_winners() {
    let m = 512;
    let mut rng = SmallRng::seed_from_u64(33);
    let truth_row = BitVec::random(&mut rng, m);
    let truth = byzscore_bitset::BitMatrix::from_rows(std::slice::from_ref(&truth_row));
    let oracle = Oracle::new(&truth);
    let board = Board::new();
    let behaviors = Behaviors::all_honest(&truth);
    let params = BlockParams::default();
    let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);

    let mut near = truth_row.clone();
    near.flip_random_distinct(&mut rng, 3);
    let mut far = truth_row.clone();
    far.flip_random_distinct(&mut rng, 200);
    let cands = vec![far, near];
    let objects: Vec<u32> = (0..m as u32).collect();

    let mut r1 = SmallRng::seed_from_u64(7);
    let mut r2 = SmallRng::seed_from_u64(8);
    assert_eq!(rselect(&ctx, 0, &cands, &objects, &mut r1), 1);
    assert_eq!(select_among(&ctx, 0, &cands, &objects, &mut r2), 1);
}

#[test]
fn blocks_tolerate_byzantine_posts_in_pipeline() {
    let inst = Workload::PlantedClusters {
        players: 96,
        objects: 96,
        clusters: 3,
        diameter: 4,
        balance: Balance::Even,
    }
    .generate(23);
    let dishonest = Corruption::Count { count: 8 }.select(&inst, 1);
    let behaviors = Behaviors::new(inst.truth(), dishonest, &Inverter);
    let oracle = Oracle::new(inst.truth());
    let board = Board::new();
    let params = BlockParams::with_budget(3);
    let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(9), &params);
    let players: Vec<u32> = (0..96).collect();
    let objects: Vec<u32> = (0..96).collect();
    let out = small_radius(&ctx, &players, &objects, 4, &[3]);
    for p in 0..96u32 {
        if !behaviors.is_dishonest(p) {
            let e = out[p as usize].hamming(&inst.truth().row(p as usize));
            assert!(e <= 5 * 4, "honest player {p} error {e}");
        }
    }
}

#[test]
fn board_scopes_isolate_block_invocations() {
    let inst = Workload::CloneClasses {
        players: 32,
        objects: 32,
        classes: 2,
        balance: Balance::Even,
    }
    .generate(25);
    let oracle = Oracle::new(inst.truth());
    let board = Board::new();
    let behaviors = Behaviors::all_honest(inst.truth());
    let params = BlockParams::with_budget(4);
    let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(3), &params);
    let players: Vec<u32> = (0..32).collect();
    let objects: Vec<u32> = (0..32).collect();
    zero_radius(&ctx, &players, &objects, 4, &[100]);
    zero_radius(&ctx, &players, &objects, 4, &[200]);
    let scope_a = byzscore_board::scope_id(&[100, byzscore_random::tags::ZR_PARTITION]);
    let scope_b = byzscore_board::scope_id(&[200, byzscore_random::tags::ZR_PARTITION]);
    assert_eq!(board.vectors(scope_a).len(), 32);
    assert_eq!(board.vectors(scope_b).len(), 32);
    assert_ne!(scope_a, scope_b);
}

#[test]
fn probe_accounting_spans_blocks() {
    let inst = Workload::CloneClasses {
        players: 64,
        objects: 64,
        classes: 2,
        balance: Balance::Even,
    }
    .generate(27);
    let oracle = Oracle::new(inst.truth());
    let board = Board::new();
    let behaviors = Behaviors::all_honest(inst.truth());
    let params = BlockParams::with_budget(2);
    let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(3), &params);
    let players: Vec<u32> = (0..64).collect();
    let objects: Vec<u32> = (0..64).collect();

    let before = oracle.snapshot();
    zero_radius(&ctx, &players, &objects, 2, &[1]);
    let after_zr = oracle.snapshot();
    small_radius(&ctx, &players, &objects, 2, &[2]);
    let after_sr = oracle.snapshot();

    let zr_cost = after_zr.since(&before);
    let sr_cost = after_sr.since(&after_zr);
    assert!(zr_cost.total() > 0);
    assert!(sr_cost.total() > 0);
    assert!(
        sr_cost.max() >= zr_cost.max(),
        "SmallRadius runs ZeroRadius repeatedly; it cannot be cheaper"
    );
}
