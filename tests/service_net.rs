//! Wire-layer integration tests for the `byzscore-wire/v1` TCP
//! front-end: loopback round-trips of every request type, admission
//! backpressure (typed `Busy`, zero accepted-op loss), and a
//! malformed-frame property — garbage on the wire gets a typed answer,
//! never a panic or a wedged connection.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::thread;

use byzscore_service::net::{replay_over_socket, request_stats};
use byzscore_service::wire::{read_frame, write_frame, ClientFrame, ServerFrame, MAX_FRAME_BYTES};
use byzscore_service::{
    parse_op, NetConfig, Request, Response, Server, ServiceEngine, ServiceError,
};
use proptest::prelude::*;

/// Start a server on an ephemeral loopback port with `run()` detached;
/// test processes exit without shutting these down, which is fine —
/// the threads die with the process.
fn spawn_server(config: NetConfig) -> SocketAddr {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    thread::spawn(move || server.run());
    addr
}

fn ops(lines: &[&str]) -> Vec<Request> {
    lines
        .iter()
        .map(|l| parse_op(l).expect("test op parses"))
        .collect()
}

fn handshake(stream: &mut TcpStream) {
    write_frame(stream, ClientFrame::Hello.encode().as_bytes()).expect("send hello");
    let frame = read_server_frame(stream);
    assert_eq!(frame, ServerFrame::Hello);
}

fn read_server_frame(stream: &mut TcpStream) -> ServerFrame {
    let payload = read_frame(stream)
        .expect("read frame")
        .expect("server still open");
    let text = std::str::from_utf8(&payload).expect("server frames are UTF-8");
    ServerFrame::decode(text).expect("server frames decode")
}

/// Every request shape — two algorithms, probes, full and restricted
/// queries, churn, epoch, close — plus the rejection paths (unknown
/// session, closed session, out-of-range player), replayed over the
/// socket at one and three connections. The typed answers must equal
/// the in-process `ServiceEngine::execute` answers exactly, not just
/// digest-equal.
#[test]
fn loopback_round_trips_every_request_type() {
    let script = ops(&[
        "open 24 48 3 3 11 naive 4 1 2000 13",
        "open 24 48 3 3 17 majority 4 1 2000 19",
        "probe 0 3 1,2,9",
        "probe 1 5 0,4",
        "query 0 1,3 -",
        "query 1 2,5 7,8,9",
        "churn 0 2 2",
        "epoch 1",
        "probe 0 1 40",
        "query 0 0,1,2,3 -",
        "probe 9 0 1",
        "query 0 99 -",
        "close 1",
        "close 0",
        "epoch 0",
    ]);
    let expected = ServiceEngine::new().execute(&script);
    assert!(
        expected
            .iter()
            .any(|r| matches!(r, Response::Rejected(ServiceError::UnknownSession(9)))),
        "script covers the rejection path"
    );

    for connections in [1usize, 3] {
        let addr = spawn_server(NetConfig::default());
        let replay =
            replay_over_socket(addr, &script, connections).expect("socket replay succeeds");
        assert_eq!(
            replay.responses, expected,
            "socket answers differ from in-process at {connections} connection(s)"
        );
    }
}

/// Fill a depth-1 admission queue behind a slow barrier: overload must
/// answer a typed `Busy`, and retrying every `Busy` op until it lands
/// must reproduce the in-process answers exactly — the server never
/// loses an op it accepted, and the final counters agree
/// (admitted == completed, busy counted).
#[test]
fn overload_answers_busy_and_loses_nothing() {
    const PROBES: u64 = 48;
    let addr = spawn_server(NetConfig {
        shards: 4,
        queue_depth: 1,
        retry_after_ms: 1,
        ..NetConfig::default()
    });

    // The same script the server will effectively run: one open, one
    // slow epoch barrier, then a burst of commuting probes.
    let mut script = ops(&["open 64 128 4 4 11 calculate 6 2 2000 13", "epoch 0"]);
    for seq in 2..2 + PROBES {
        script.push(parse_op(&format!("probe 0 {} {}", seq % 64, seq)).unwrap());
    }
    let expected = ServiceEngine::new().execute(&script);

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    handshake(&mut stream);
    let lines: Vec<String> = script.iter().map(byzscore_service::format_op).collect();

    // Open first (session ids are assigned in open order), then blast
    // the barrier and the whole probe burst without reading a single
    // answer — the dispatcher is stuck in the epoch recompute, so the
    // depth-1 queue must overflow into Busy answers.
    let send = |stream: &mut TcpStream, seq: u64| {
        let frame = ClientFrame::Op {
            seq,
            line: lines[seq as usize].clone(),
        };
        write_frame(stream, frame.encode().as_bytes()).expect("send op");
    };
    send(&mut stream, 0);
    match read_server_frame(&mut stream) {
        ServerFrame::Resp { seq: 0, response } => assert_eq!(response, expected[0]),
        other => panic!("expected the open answer, got {other:?}"),
    }
    for seq in 1..lines.len() as u64 {
        send(&mut stream, seq);
    }

    // Reap everything, resending each Busy answer verbatim.
    let mut answers: Vec<Option<Response>> = vec![None; lines.len()];
    answers[0] = Some(expected[0].clone());
    let mut busy_answers = 0u64;
    while answers.iter().any(Option::is_none) {
        match read_server_frame(&mut stream) {
            ServerFrame::Resp {
                seq,
                response: Response::Busy { .. },
            } => {
                busy_answers += 1;
                send(&mut stream, seq);
            }
            ServerFrame::Resp { seq, response } => {
                let slot = &mut answers[seq as usize];
                assert!(slot.is_none(), "op {seq} answered twice");
                *slot = Some(response);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(
        busy_answers > 0,
        "a depth-1 queue behind a slow barrier must overflow into Busy"
    );
    let answers: Vec<Response> = answers.into_iter().map(Option::unwrap).collect();
    assert_eq!(
        answers, expected,
        "per-op answers after Busy retries differ from in-process"
    );

    let stats = request_stats(addr).expect("stats over a fresh connection");
    assert_eq!(stats.busy_rejected, busy_answers);
    assert_eq!(
        stats.admitted, stats.completed,
        "an accepted op went unanswered"
    );
    assert_eq!(stats.admitted, lines.len() as u64);
    assert_eq!(stats.open_sessions, 1);
}

/// Regression for the admission-gauge audit: malformed op lines and
/// other early-return paths answer *before* `depth_enter`, so a burst
/// of garbage must leave the live queue-depth gauge at exactly zero —
/// a leak here would eventually wedge admission control by making the
/// queue look permanently full.
#[test]
fn malformed_burst_returns_queue_depth_to_zero() {
    let addr = spawn_server(NetConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    handshake(&mut stream);
    for seq in 0..64u64 {
        let frame = ClientFrame::Op {
            seq,
            line: format!("definitely-not-an-op {seq}"),
        };
        write_frame(&mut stream, frame.encode().as_bytes()).expect("send malformed op");
    }
    for _ in 0..64 {
        match read_server_frame(&mut stream) {
            ServerFrame::Resp { response, .. } => assert!(
                matches!(response, Response::Rejected(ServiceError::Malformed { .. })),
                "expected a typed malformed rejection, got {response:?}"
            ),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    // One real op proves the connection (and admission) still works.
    let frame = ClientFrame::Op {
        seq: 99,
        line: "query 0 1 -".to_string(),
    };
    write_frame(&mut stream, frame.encode().as_bytes()).expect("send valid op");
    match read_server_frame(&mut stream) {
        ServerFrame::Resp { seq: 99, response } => {
            assert_eq!(
                response,
                Response::Rejected(ServiceError::UnknownSession(0))
            );
        }
        other => panic!("unexpected frame {other:?}"),
    }
    let stats = request_stats(addr).expect("stats");
    assert_eq!(stats.malformed, 64);
    assert_eq!(stats.queue_depth, 0, "the depth gauge leaked");
    assert_eq!(stats.admitted, stats.completed);
}

/// A client that sends half a frame and goes silent must not pin its
/// connection thread forever: the per-socket read timeout fires, the
/// server names the cause in a typed `err` frame, and the connection
/// closes — while other connections keep working.
#[test]
fn stalled_connection_times_out_with_a_typed_error() {
    let addr = spawn_server(NetConfig {
        read_timeout_ms: 200,
        ..NetConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    handshake(&mut stream);
    // Two bytes of a four-byte length prefix, then silence.
    stream.write_all(&[0, 0]).expect("send partial prefix");
    match read_server_frame(&mut stream) {
        ServerFrame::Err { message, .. } => assert!(
            message.contains("read timeout"),
            "error names the timeout: {message:?}"
        ),
        other => panic!("expected an err frame, got {other:?}"),
    }
    assert_eq!(
        read_frame(&mut stream).expect("clean close"),
        None,
        "server closes the stalled connection"
    );
    // The listener is still healthy.
    let stats = request_stats(addr).expect("stats after a timed-out peer");
    assert_eq!(stats.admitted, 0);
}

/// Retried mutations apply exactly once: resending a barrier op with
/// the same sequence number — on the same connection and from a
/// different connection — answers the recorded response from the
/// dedupe window instead of re-executing the world transition.
#[test]
fn resent_barriers_apply_exactly_once() {
    let script = ops(&[
        "open 24 48 3 3 11 naive 4 1 2000 13",
        "probe 0 3 1,2,9",
        "churn 0 2 2",
        "query 0 1,3 -",
        "close 0",
    ]);
    let expected = ServiceEngine::new().execute(&script);

    for connections in [1usize, 3] {
        let addr = spawn_server(NetConfig::default());
        let mut streams: Vec<TcpStream> = (0..connections)
            .map(|_| {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_nodelay(true).unwrap();
                handshake(&mut s);
                s
            })
            .collect();
        let lines: Vec<String> = script.iter().map(byzscore_service::format_op).collect();
        let mut answers = Vec::new();
        for (seq, line) in lines.iter().enumerate() {
            let frame = ClientFrame::Op {
                seq: seq as u64,
                line: line.clone(),
            };
            write_frame(&mut streams[0], frame.encode().as_bytes()).expect("send op");
            let answer = match read_server_frame(&mut streams[0]) {
                ServerFrame::Resp { response, .. } => response,
                other => panic!("unexpected frame {other:?}"),
            };
            // Resend every barrier verbatim — once per open connection,
            // exercising cross-connection dedupe when connections > 1.
            if !script[seq].is_shardable() {
                for stream in streams.iter_mut() {
                    let frame = ClientFrame::Op {
                        seq: seq as u64,
                        line: line.clone(),
                    };
                    write_frame(stream, frame.encode().as_bytes()).expect("resend op");
                    match read_server_frame(stream) {
                        ServerFrame::Resp { response, .. } => assert_eq!(
                            response, answer,
                            "a deduped resend answered differently at seq {seq}"
                        ),
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
            }
            answers.push(answer);
        }
        // If any resent churn/close had re-applied, the later query and
        // close answers would differ from the single-execution run.
        assert_eq!(
            answers, expected,
            "resends changed state at {connections} connection(s)"
        );
        let stats = request_stats(addr).expect("stats");
        let barriers = script.iter().filter(|op| !op.is_shardable()).count() as u64;
        assert_eq!(stats.deduped, barriers * connections as u64);
        assert_eq!(stats.admitted, stats.completed);
    }
}

/// A frame whose declared length exceeds the protocol cap cannot be
/// resynchronized; the server must answer a typed `err` frame and
/// close — not panic, not hang.
#[test]
fn oversized_frame_gets_a_typed_error_then_close() {
    let addr = spawn_server(NetConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    handshake(&mut stream);
    stream
        .write_all(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes())
        .expect("send lying length prefix");
    match read_server_frame(&mut stream) {
        ServerFrame::Err { message, .. } => assert!(
            message.contains("exceeds"),
            "error names the cap: {message:?}"
        ),
        other => panic!("expected an err frame, got {other:?}"),
    }
    assert_eq!(
        read_frame(&mut stream).expect("clean close"),
        None,
        "server closes after an unresyncable frame"
    );
}

fn fuzz_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| spawn_server(NetConfig::default()))
}

fn garbage_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            (state >> 32) as u8
        })
        .collect()
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes inside a well-formed frame: the server answers a
    /// typed frame (an `err`, or a real answer if the bytes happened to
    /// spell a valid request) and the connection stays usable — a valid
    /// op sent right after gets its exact typed answer. All cases share
    /// one server, so a panic anywhere wedges every later case.
    #[test]
    fn garbage_frames_get_typed_answers_and_never_wedge(
        seed in 0u64..u64::MAX,
        len in 0usize..48,
    ) {
        let payload = garbage_bytes(seed, len);
        if let Ok(text) = std::str::from_utf8(&payload) {
            // Astronomically unlikely, but a shutdown frame would be a
            // *valid* request to kill the shared server.
            prop_assume!(!matches!(ClientFrame::decode(text), Ok(ClientFrame::Shutdown { .. })));
        }
        let mut stream = TcpStream::connect(fuzz_server()).expect("connect");
        handshake(&mut stream);
        write_frame(&mut stream, &payload).expect("send garbage frame");
        // Whatever came back decoded as a typed server frame, or the
        // read would have panicked.
        let _ = read_server_frame(&mut stream);
        let probe = ClientFrame::Op { seq: 7, line: "query 0 1 -".to_string() };
        write_frame(&mut stream, probe.encode().as_bytes()).expect("send valid op");
        loop {
            match read_server_frame(&mut stream) {
                ServerFrame::Resp { seq, response } => {
                    prop_assert_eq!(seq, 7);
                    prop_assert_eq!(
                        response,
                        Response::Rejected(ServiceError::UnknownSession(0))
                    );
                    break;
                }
                // Stragglers from the garbage frame (e.g. it spelled a
                // valid stats request) are fine; keep reading.
                _ => continue,
            }
        }
    }

    /// A well-formed `req` envelope around a garbage op line: the
    /// answer is the typed malformed rejection with the right sequence
    /// number, the stdin-loop bugfix shared by both front-ends.
    #[test]
    fn malformed_op_lines_get_typed_rejections(
        seed in 0u64..u64::MAX,
        len in 1usize..32,
        seq in 0u64..u64::MAX,
    ) {
        let line: String = garbage_bytes(seed, len)
            .into_iter()
            .map(|b| (b'!' + b % 64) as char)
            .collect();
        prop_assume!(parse_op(&line).is_err());
        let mut stream = TcpStream::connect(fuzz_server()).expect("connect");
        handshake(&mut stream);
        let frame = ClientFrame::Op { seq, line };
        write_frame(&mut stream, frame.encode().as_bytes()).expect("send malformed op");
        match read_server_frame(&mut stream) {
            ServerFrame::Resp { seq: got, response } => {
                prop_assert_eq!(got, seq);
                prop_assert!(
                    matches!(response, Response::Rejected(ServiceError::Malformed { .. })),
                    "expected a typed malformed rejection, got {response:?}"
                );
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }
}
