//! `NeighborIndex` equivalence: the banded (sound LSH prune, lazy peel)
//! strategy must produce the *identical* Lemma-8 edge set and the
//! identical `Clustering` as the materialized exact `O(n²)` pass, on
//! structured and adversarially random inputs alike. This is the pinned
//! contract that lets e13 run `NaiveSampling` at n=10⁵ without changing a
//! single output bit.

use byzscore::cluster::{
    cluster_players, neighbor_graph, peel_clusters, NeighborIndex, NeighborStrategy,
};
use byzscore_bitset::{BitVec, Bits};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Brute-force Lemma-8 adjacency straight from the definition.
fn brute_adjacency(zvecs: &[BitVec], threshold: usize) -> Vec<Vec<u32>> {
    (0..zvecs.len())
        .map(|p| {
            (0..zvecs.len())
                .filter(|&q| q != p && zvecs[p].hamming(&zvecs[q]) <= threshold)
                .map(|q| q as u32)
                .collect()
        })
        .collect()
}

/// Random mixture: some tight camps, some uniform noise players.
fn mixed_zvecs(seed: u64, n: usize, len: usize, spread: usize) -> Vec<BitVec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let camps = 1 + (seed as usize % 4);
    let centers: Vec<BitVec> = (0..camps).map(|_| BitVec::random(&mut rng, len)).collect();
    (0..n)
        .map(|i| {
            if i % 5 == 4 {
                BitVec::random(&mut rng, len) // noise player
            } else {
                let flips = rng.gen_range(0..=spread.min(len));
                let mut v = centers[i % camps].clone();
                v.flip_random_distinct(&mut rng, flips);
                v
            }
        })
        .collect()
}

proptest! {
    /// Edge sets are identical across strategies and match brute force,
    /// across random sizes, lengths, and thresholds — covering all four
    /// internal modes (exact / banded / scan / complete).
    #[test]
    fn banded_edge_set_equals_exact(seed in 0u64..60, n in 2usize..36, len in 1usize..300, t_raw in 0usize..330) {
        let spread = (len / 16).max(1);
        let zvecs = mixed_zvecs(seed, n, len, spread);
        let threshold = t_raw % (len + 2); // sometimes ≥ len ⇒ complete graph
        let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
        let banded = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Banded);
        let brute = brute_adjacency(&zvecs, threshold);
        prop_assert_eq!(&exact.adjacency(), &brute);
        prop_assert_eq!(
            &banded.adjacency(), &brute,
            "banded ({}) edge set diverges at n={} len={} τ={}",
            banded.mode_name(), n, len, threshold
        );
        prop_assert_eq!(exact.degrees(), banded.degrees());
    }

    /// Clustering is identical across strategies and matches the original
    /// materialized `peel_clusters` reference, for every min_size regime.
    #[test]
    fn banded_peel_equals_exact(seed in 100u64..150, n in 2usize..30, len in 8usize..220, t_raw in 0usize..240, min_size in 1usize..12) {
        let spread = (len / 16).max(1);
        let zvecs = mixed_zvecs(seed, n, len, spread);
        let threshold = t_raw % (len + 2);
        let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
        let banded = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Banded);
        let reference = peel_clusters(&zvecs, &neighbor_graph(&zvecs, threshold), min_size);
        let from_exact = exact.peel(min_size);
        let from_banded = banded.peel(min_size);
        prop_assert_eq!(&from_exact.assignment, &reference.assignment);
        prop_assert_eq!(&from_exact.clusters, &reference.clusters);
        prop_assert_eq!(
            &from_banded.assignment, &reference.assignment,
            "banded ({}) assignment diverges at n={} len={} τ={} min={}",
            banded.mode_name(), n, len, threshold, min_size
        );
        prop_assert_eq!(&from_banded.clusters, &reference.clusters);
        prop_assert!(from_banded.is_partition());
    }

    /// `cluster_players` (Auto) stays pinned to the reference path.
    #[test]
    fn auto_strategy_matches_reference(seed in 200u64..230, n in 2usize..24, len in 4usize..160) {
        let zvecs = mixed_zvecs(seed, n, len, (len / 8).max(1));
        let threshold = len / 4;
        let min_size = (n / 3).max(1);
        let reference = peel_clusters(&zvecs, &neighbor_graph(&zvecs, threshold), min_size);
        let auto = cluster_players(&zvecs, threshold, min_size);
        prop_assert_eq!(auto.assignment, reference.assignment);
        prop_assert_eq!(auto.clusters, reference.clusters);
    }
}

/// Deterministic large-ish case that forces the *banded* bucket mode
/// (wide bands) with multiple peels and leftovers.
#[test]
fn banded_bucket_mode_multi_peel() {
    let zvecs = mixed_zvecs(7, 400, 640, 8);
    let threshold = 30; // 640 / 31 = 20-bit bands ⇒ banded bucket mode
    let banded = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Banded);
    assert_eq!(banded.mode_name(), "banded");
    let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
    assert_eq!(banded.adjacency(), exact.adjacency());
    for min_size in [3usize, 40, 90] {
        let a = banded.peel(min_size);
        let b = peel_clusters(&zvecs, &exact.adjacency(), min_size);
        assert_eq!(a.assignment, b.assignment, "min_size={min_size}");
        assert_eq!(a.clusters, b.clusters, "min_size={min_size}");
    }
}
