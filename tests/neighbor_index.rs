//! `NeighborIndex` equivalence: the lazy strategies — banded (sound LSH
//! prune, with single-bit-flip multi-probing at mid-`τ` and a popcount
//! prefilter in scan mode) and grouped (bit-identical vectors
//! deduplicated, discovery over weighted group representatives) — must
//! produce the *identical* Lemma-8 edge set and the identical `Clustering`
//! as the materialized exact `O(n²)` pass, on structured and adversarially
//! random inputs alike. This is the pinned contract that lets e13 run
//! `NaiveSampling` at n=10⁵ without changing a single output bit.

use byzscore::cluster::{
    cluster_players, neighbor_graph, peel_clusters, GroupCache, NeighborIndex, NeighborStrategy,
};
use byzscore_bitset::{BitVec, Bits};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Brute-force Lemma-8 adjacency straight from the definition.
fn brute_adjacency(zvecs: &[BitVec], threshold: usize) -> Vec<Vec<u32>> {
    (0..zvecs.len())
        .map(|p| {
            (0..zvecs.len())
                .filter(|&q| q != p && zvecs[p].hamming(&zvecs[q]) <= threshold)
                .map(|q| q as u32)
                .collect()
        })
        .collect()
}

/// Random mixture: some tight camps, some uniform noise players. Camp
/// members repeat exact center copies often enough that grouped discovery
/// sees real multi-member groups.
fn mixed_zvecs(seed: u64, n: usize, len: usize, spread: usize) -> Vec<BitVec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let camps = 1 + (seed as usize % 4);
    let centers: Vec<BitVec> = (0..camps).map(|_| BitVec::random(&mut rng, len)).collect();
    (0..n)
        .map(|i| {
            if i % 5 == 4 {
                BitVec::random(&mut rng, len) // noise player
            } else {
                let flips = rng.gen_range(0..=spread.min(len));
                let mut v = centers[i % camps].clone();
                v.flip_random_distinct(&mut rng, flips);
                v
            }
        })
        .collect()
}

const LAZY: [NeighborStrategy; 2] = [NeighborStrategy::Banded, NeighborStrategy::Grouped];

proptest! {
    /// Edge sets are identical across strategies and match brute force,
    /// across random sizes, lengths, and thresholds — covering all
    /// internal modes (exact / banded / multiprobe / scan / complete /
    /// grouped).
    #[test]
    fn lazy_edge_sets_equal_exact(seed in 0u64..60, n in 2usize..36, len in 1usize..300, t_raw in 0usize..330) {
        let spread = (len / 16).max(1);
        let zvecs = mixed_zvecs(seed, n, len, spread);
        let threshold = t_raw % (len + 2); // sometimes ≥ len ⇒ complete graph
        let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
        let brute = brute_adjacency(&zvecs, threshold);
        prop_assert_eq!(&exact.adjacency(), &brute);
        for strategy in LAZY {
            let lazy = NeighborIndex::build(&zvecs, threshold, strategy);
            prop_assert_eq!(
                &lazy.adjacency(), &brute,
                "{} edge set diverges at n={} len={} τ={}",
                lazy.mode_name(), n, len, threshold
            );
            prop_assert_eq!(exact.degrees(), lazy.degrees());
        }
    }

    /// Clustering is identical across strategies and matches the original
    /// materialized `peel_clusters` reference, for every min_size regime.
    #[test]
    fn lazy_peels_equal_exact(seed in 100u64..150, n in 2usize..30, len in 8usize..220, t_raw in 0usize..240, min_size in 1usize..12) {
        let spread = (len / 16).max(1);
        let zvecs = mixed_zvecs(seed, n, len, spread);
        let threshold = t_raw % (len + 2);
        let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
        let reference = peel_clusters(&zvecs, &neighbor_graph(&zvecs, threshold), min_size);
        let from_exact = exact.peel(min_size);
        prop_assert_eq!(&from_exact.assignment, &reference.assignment);
        prop_assert_eq!(&from_exact.clusters, &reference.clusters);
        for strategy in LAZY {
            let lazy = NeighborIndex::build(&zvecs, threshold, strategy);
            let from_lazy = lazy.peel(min_size);
            prop_assert_eq!(
                &from_lazy.assignment, &reference.assignment,
                "{} assignment diverges at n={} len={} τ={} min={}",
                lazy.mode_name(), n, len, threshold, min_size
            );
            prop_assert_eq!(&from_lazy.clusters, &reference.clusters);
            prop_assert!(from_lazy.is_partition());
        }
    }

    /// `cluster_players` (Auto, which picks grouped discovery past the
    /// exact cutoff) stays pinned to the reference path.
    #[test]
    fn auto_strategy_matches_reference(seed in 200u64..230, n in 2usize..24, len in 4usize..160) {
        let zvecs = mixed_zvecs(seed, n, len, (len / 8).max(1));
        let threshold = len / 4;
        let min_size = (n / 3).max(1);
        let reference = peel_clusters(&zvecs, &neighbor_graph(&zvecs, threshold), min_size);
        let auto = cluster_players(&zvecs, threshold, min_size);
        prop_assert_eq!(auto.assignment, reference.assignment);
        prop_assert_eq!(auto.clusters, reference.clusters);
    }

    /// Cross-guess reuse: a `GroupCache` built once and re-banded for a
    /// sweep of thresholds must yield, at every τ and for every strategy,
    /// the identical edge set and identical `Clustering` as an index built
    /// fresh from the same z-vectors — the pinned contract behind the
    /// naive baseline's guess-loop fusion.
    #[test]
    fn group_cache_rebanding_equals_fresh_build(seed in 400u64..440, n in 2usize..34, len in 8usize..260) {
        let spread = (len / 16).max(1);
        let zvecs = mixed_zvecs(seed, n, len, spread);
        let min_size = (n / 4).max(1);
        for strategy in [NeighborStrategy::Auto, NeighborStrategy::Banded, NeighborStrategy::Grouped] {
            let cache = GroupCache::build(&zvecs, strategy);
            // Doubling τ sweep, like the diameter-guess loop.
            let mut tau = 1usize;
            while tau <= len + 1 {
                let fresh = NeighborIndex::build(&zvecs, tau, strategy);
                let cached = cache.index(tau);
                prop_assert_eq!(
                    &cached.adjacency(), &fresh.adjacency(),
                    "{:?} cached edge set diverges at n={} len={} τ={}",
                    strategy, n, len, tau
                );
                let a = cache.cluster(tau, min_size);
                let b = fresh.peel(min_size);
                prop_assert_eq!(&a.assignment, &b.assignment);
                prop_assert_eq!(&a.clusters, &b.clusters);
                tau *= 2;
            }
        }
    }

    /// Warm-start refresh: perturbing a few rows and `refresh`ing the
    /// cache must give bit-identical clusterings to a cold rebuild, while
    /// reporting the untouched rows as reused.
    #[test]
    fn group_cache_refresh_equals_cold_build(seed in 500u64..530, n in 4usize..30, len in 16usize..200, touched in 1usize..6) {
        let zvecs = mixed_zvecs(seed, n, len, (len / 16).max(1));
        for strategy in [NeighborStrategy::Auto, NeighborStrategy::Grouped] {
            let mut cache = GroupCache::build(&zvecs, strategy);
            let mut drifted = zvecs.clone();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xd21f7);
            for _ in 0..touched.min(n) {
                let p = rng.gen_range(0..n);
                drifted[p].flip(rng.gen_range(0..len));
            }
            let reused = cache.refresh(&drifted);
            // Hash reuse only exists on the grouped path (Auto stays exact
            // at these sizes and caches nothing); there, flips may collide
            // on the same row, so the untouched count is a lower bound.
            if cache.group_count().is_some() {
                prop_assert!(reused >= n.saturating_sub(touched.min(n)));
            } else {
                prop_assert_eq!(reused, 0);
            }
            let cold = GroupCache::build(&drifted, strategy);
            for tau in [1usize, len / 8 + 1, len / 2] {
                let a = cache.cluster(tau, 2);
                let b = cold.cluster(tau, 2);
                prop_assert_eq!(&a.assignment, &b.assignment, "{:?} τ={}", strategy, tau);
                prop_assert_eq!(&a.clusters, &b.clusters);
            }
        }
    }

    /// Heavy duplication (few distinct vectors, many copies): the grouped
    /// strategy's collapse regime, checked against brute force.
    #[test]
    fn grouped_heavy_duplication_equals_exact(seed in 300u64..330, distinct in 1usize..6, copies in 1usize..8, len in 16usize..120, t_raw in 0usize..130) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let base: Vec<BitVec> = (0..distinct).map(|_| BitVec::random(&mut rng, len)).collect();
        let n = distinct * copies;
        let zvecs: Vec<BitVec> = (0..n).map(|i| base[i % distinct].clone()).collect();
        let threshold = t_raw % (len + 2);
        let grouped = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Grouped);
        let brute = brute_adjacency(&zvecs, threshold);
        prop_assert_eq!(&grouped.adjacency(), &brute);
        let min_size = (copies / 2).max(1);
        let reference = peel_clusters(&zvecs, &brute, min_size);
        prop_assert_eq!(grouped.peel(min_size), reference);
    }
}

/// Deterministic large-ish case that forces the *banded* bucket mode
/// (wide bands) with multiple peels and leftovers.
#[test]
fn banded_bucket_mode_multi_peel() {
    let zvecs = mixed_zvecs(7, 400, 640, 8);
    let threshold = 30; // 640 / 31 = 20-bit bands ⇒ banded bucket mode
    let banded = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Banded);
    assert_eq!(banded.mode_name(), "banded");
    let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
    assert_eq!(banded.adjacency(), exact.adjacency());
    for min_size in [3usize, 40, 90] {
        let a = banded.peel(min_size);
        let b = peel_clusters(&zvecs, &exact.adjacency(), min_size);
        assert_eq!(a.assignment, b.assignment, "min_size={min_size}");
        assert_eq!(a.clusters, b.clusters, "min_size={min_size}");
    }
}

/// Deterministic mid-`τ` case that forces multi-probe bucketing (bands too
/// narrow for exact matching, wide enough for single-bit-flip probes) with
/// multiple peels, and the same world one regime further (scan + popcount
/// prefilter).
#[test]
fn multiprobe_and_scan_modes_multi_peel() {
    let zvecs = mixed_zvecs(9, 300, 640, 10);
    // 640/(45+1) = 13 < 16 exact-match bands; 640/(22+1) = 27-bit probe
    // bands ⇒ multiprobe.
    let probe = NeighborIndex::build(&zvecs, 45, NeighborStrategy::Banded);
    assert_eq!(probe.mode_name(), "multiprobe");
    // 640/(160+1) = 3 and 640/(80+1) = 7 ⇒ both too narrow ⇒ scan.
    let scan = NeighborIndex::build(&zvecs, 160, NeighborStrategy::Banded);
    assert_eq!(scan.mode_name(), "scan");
    for (idx, threshold) in [(probe, 45usize), (scan, 160)] {
        let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
        assert_eq!(idx.adjacency(), exact.adjacency(), "τ={threshold}");
        for min_size in [3usize, 30, 80] {
            let a = idx.peel(min_size);
            let b = peel_clusters(&zvecs, &exact.adjacency(), min_size);
            assert_eq!(a.assignment, b.assignment, "τ={threshold} min={min_size}");
            assert_eq!(a.clusters, b.clusters, "τ={threshold} min={min_size}");
        }
    }
}

/// Deterministic grouped case with duplicates spread across camps (the
/// inner index over ~330 groups runs the materialized exact pass).
#[test]
fn grouped_bucket_mode_multi_peel() {
    let mut zvecs = mixed_zvecs(11, 380, 640, 6);
    // Triple every fifth vector so groups have real multiplicity.
    for i in (0..380).step_by(5) {
        let v = zvecs[i].clone();
        zvecs.push(v.clone());
        zvecs.push(v);
    }
    let grouped = NeighborIndex::build(&zvecs, 30, NeighborStrategy::Grouped);
    assert_eq!(grouped.mode_name(), "grouped");
    let exact = NeighborIndex::build(&zvecs, 30, NeighborStrategy::Exact);
    assert_eq!(grouped.adjacency(), exact.adjacency());
    assert_eq!(grouped.degrees(), exact.degrees());
    for min_size in [3usize, 40, 90] {
        let a = grouped.peel(min_size);
        let b = peel_clusters(&zvecs, &exact.adjacency(), min_size);
        assert_eq!(a.assignment, b.assignment, "min_size={min_size}");
        assert_eq!(a.clusters, b.clusters, "min_size={min_size}");
    }
}

/// The production-scale recursion e13 hits: more than `AUTO_EXACT_MAX`
/// groups survive dedup, so the grouped strategy's *inner* index runs
/// banded over the representatives. 400 camps × (center + 12 single-bit
/// variants), centers duplicated ×2 ⇒ n = 6000, G = 5200 > 4096 (and
/// ≤ 7n/8, so grouping does not fall back to direct banding). τ = 6 with
/// 512-bit vectors keeps the inner τ+1 bands 73 bits wide — the banded
/// bucket path. Pinned against the banded player-level index, which the
/// other tests pin against brute force.
#[test]
fn grouped_with_banded_inner_index() {
    let len = 512usize;
    let mut rng = SmallRng::seed_from_u64(17);
    let mut zvecs: Vec<BitVec> = Vec::new();
    for _ in 0..400 {
        let center = BitVec::random(&mut rng, len);
        for _ in 0..3 {
            zvecs.push(center.clone());
        }
        for j in 0..12 {
            let mut v = center.clone();
            v.flip(j * 41); // single distinct flip ⇒ within-camp distance ≤ 2
            zvecs.push(v);
        }
    }
    assert_eq!(zvecs.len(), 6000);
    let tau = 6usize;
    let grouped = NeighborIndex::build(&zvecs, tau, NeighborStrategy::Grouped);
    assert_eq!(grouped.mode_name(), "grouped");
    let banded = NeighborIndex::build(&zvecs, tau, NeighborStrategy::Banded);
    assert_eq!(banded.mode_name(), "banded");
    assert_eq!(grouped.degrees(), banded.degrees());
    for p in [0usize, 1, 14, 2999, 5999] {
        assert_eq!(
            grouped.neighbors_of(p),
            banded.neighbors_of(p),
            "player {p}"
        );
    }
    for min_size in [10usize, 15] {
        let a = grouped.peel(min_size);
        let b = banded.peel(min_size);
        assert_eq!(a.assignment, b.assignment, "min_size={min_size}");
        assert_eq!(a.clusters, b.clusters, "min_size={min_size}");
        assert!(a.is_partition());
    }
}
