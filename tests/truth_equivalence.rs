//! Substrate-backend equivalence: `ProceduralTruth` and `DenseTruth` built
//! from the same [`ClusterSpec`] must produce **bit-identical** outcomes —
//! outputs, probe ledgers, and board traffic — for every registry
//! algorithm. This is the contract that makes the `O(1)`-memory backend a
//! drop-in substrate: nothing downstream may observe which backend it runs
//! on.

use byzscore::{Algorithm, ClusterSpec, ProtocolParams, Session};
use byzscore_adversary::{Corruption, Inverter};

fn spec(n: usize) -> ClusterSpec {
    ClusterSpec {
        players: n,
        objects: n,
        clusters: 4,
        diameter: 8,
        seed: 0x77aa + n as u64,
    }
}

/// Procedural session and its dense twin over the same spec.
fn twin_sessions(n: usize) -> (Session, Session) {
    let params = ProtocolParams::with_budget(4);
    let procedural = Session::builder()
        .procedural(spec(n))
        .params(params.clone())
        .build();
    let dense = Session::builder()
        .procedural_dense(spec(n))
        .params(params)
        .build();
    (procedural, dense)
}

fn assert_equivalent(n: usize, algorithms: &[Algorithm]) {
    let (procedural, dense) = twin_sessions(n);
    for &alg in algorithms {
        let a = procedural.run(alg, 9);
        let b = dense.run(alg, 9);
        assert_eq!(a.output, b.output, "{} output differs at n={n}", alg.name());
        assert_eq!(
            a.probes.counts(),
            b.probes.counts(),
            "{} probe ledger differs at n={n}",
            alg.name()
        );
        assert_eq!(
            a.board,
            b.board,
            "{} board stats differ at n={n}",
            alg.name()
        );
        assert_eq!(a.errors.per_player, b.errors.per_player);
        if alg == Algorithm::Robust {
            let leaders_a: Vec<u32> = a.repetitions.iter().map(|r| r.leader).collect();
            let leaders_b: Vec<u32> = b.repetitions.iter().map(|r| r.leader).collect();
            assert_eq!(leaders_a, leaders_b, "election transcript differs");
        }
    }
}

/// Every registry algorithm, both sizes the issue pins.
fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::CalculatePreferences,
        Algorithm::Robust,
        Algorithm::NaiveSampling,
        Algorithm::Solo,
        Algorithm::GlobalMajority,
        Algorithm::OracleClusters,
        Algorithm::DirectSmallRadius(8),
    ]
}

#[test]
fn backends_bit_identical_at_64() {
    assert_equivalent(64, &all_algorithms());
}

#[test]
fn backends_bit_identical_at_256() {
    assert_equivalent(256, &all_algorithms());
}

#[test]
fn backends_bit_identical_under_adversary() {
    // Corruption selection, omniscient strategy claims, and InCluster
    // targeting all read the truth/planted structure — none may see the
    // backend.
    let params = ProtocolParams::with_budget(4);
    let build = |dense: bool| {
        let b = if dense {
            Session::builder().procedural_dense(spec(64))
        } else {
            Session::builder().procedural(spec(64))
        };
        b.params(params.clone())
            .adversary(
                Corruption::InCluster {
                    cluster: 1,
                    count: 5,
                },
                Inverter,
            )
            .build()
    };
    let a = build(false).run(Algorithm::CalculatePreferences, 3);
    let b = build(true).run(Algorithm::CalculatePreferences, 3);
    assert_eq!(a.output, b.output);
    assert_eq!(a.probes.counts(), b.probes.counts());
    assert_eq!(a.dishonest_count, b.dishonest_count);
    assert_eq!(a.errors.per_player, b.errors.per_player);
}

#[test]
fn planted_metadata_matches_across_backends() {
    let (procedural, dense) = twin_sessions(64);
    let p = procedural.planted().unwrap();
    let d = dense.planted().unwrap();
    assert_eq!(p.assignment, d.assignment);
    assert_eq!(p.clusters, d.clusters);
    assert_eq!(p.centers, d.centers);
    assert_eq!(p.target_diameter, d.target_diameter);
}
