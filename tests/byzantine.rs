//! Byzantine integration: Theorem 14's tolerance across strategies,
//! corruption levels, and the election-based robust wrapper.

use std::sync::Arc;

use byzscore::{Algorithm, ProtocolParams, Session};
use byzscore_adversary::{
    AntiMajority, ClusterHijacker, Corruption, Inverter, RandomLiar, Sleeper, Strategy,
};
use byzscore_election::{GreedyInfiltrate, StallForcer};
use byzscore_model::{Balance, Instance, Workload};

fn world(d: usize, seed: u64) -> Instance {
    Workload::PlantedClusters {
        players: 120,
        objects: 240,
        clusters: 4,
        diameter: d,
        balance: Balance::Even,
    }
    .generate(seed)
}

const D: usize = 8;
const BUDGET: usize = 4;

fn run_attack(strategy: Arc<dyn Strategy>, count: usize, seed: u64) -> usize {
    let inst = world(D, seed);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(BUDGET))
        .adversary_shared(Corruption::Count { count }, strategy)
        .build()
        .run(Algorithm::CalculatePreferences, seed + 100);
    out.errors.max
}

#[test]
fn inverters_at_threshold_tolerated() {
    let threshold = Corruption::paper_threshold(120, BUDGET); // 10
    let err = run_attack(Arc::new(Inverter), threshold, 1);
    assert!(err <= 6 * D, "inverters at threshold: error {err}");
}

#[test]
fn anti_majority_at_threshold_tolerated() {
    let threshold = Corruption::paper_threshold(120, BUDGET);
    let err = run_attack(Arc::new(AntiMajority), threshold, 2);
    assert!(err <= 8 * D, "anti-majority at threshold: error {err}");
}

#[test]
fn random_liars_at_threshold_tolerated() {
    let threshold = Corruption::paper_threshold(120, BUDGET);
    let liar = RandomLiar { flip_prob: 0.5 };
    let err = run_attack(Arc::new(liar), threshold, 3);
    assert!(err <= 6 * D, "random liars at threshold: error {err}");
}

#[test]
fn sleepers_at_threshold_tolerated() {
    let threshold = Corruption::paper_threshold(120, BUDGET);
    let err = run_attack(Arc::new(Sleeper), threshold, 4);
    assert!(err <= 6 * D, "sleepers at threshold: error {err}");
}

#[test]
fn far_beyond_threshold_degrades() {
    // 4× the tolerance: the guarantee is void; verify the experiment can
    // actually distinguish the regimes (error grows well past O(D)).
    let threshold = Corruption::paper_threshold(120, BUDGET);
    let small = run_attack(Arc::new(AntiMajority), threshold / 2, 5);
    let large = run_attack(Arc::new(AntiMajority), 4 * threshold, 5);
    assert!(
        large > small,
        "4× threshold ({large}) should beat half threshold ({small})"
    );
    assert!(large > 2 * D, "4× threshold barely hurt: {large}");
}

#[test]
fn hijackers_below_cluster_third_tolerated() {
    let inst = world(D, 6);
    let victim = inst.planted().unwrap().clusters[0][0];
    // Cluster size 30; 7 hijackers < 1/3 of the cluster.
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(BUDGET))
        .adversary(
            Corruption::InCluster {
                cluster: 0,
                count: 7,
            },
            ClusterHijacker { victim },
        )
        .build()
        .run(Algorithm::CalculatePreferences, 7);
    assert!(
        out.errors.max <= 8 * D,
        "hijack below 1/3 of cluster: error {}",
        out.errors.max
    );
}

#[test]
fn robust_mode_survives_election_attacks() {
    let inst = world(D, 8);
    let threshold = Corruption::paper_threshold(120, BUDGET);
    for (name, election_adv) in [
        (
            "greedy",
            Arc::new(GreedyInfiltrate) as Arc<dyn byzscore_election::BinStrategy>,
        ),
        ("stall", Arc::new(StallForcer)),
    ] {
        let out = Session::builder()
            .instance(&inst)
            .params(ProtocolParams::with_budget(BUDGET))
            .adversary(Corruption::Count { count: threshold }, Inverter)
            .election_adversary_shared(election_adv)
            .build()
            .run(Algorithm::Robust, 9);
        assert!(
            out.errors.max <= 6 * D,
            "robust under {name} election adversary: error {}",
            out.errors.max
        );
        assert!(!out.repetitions.is_empty());
    }
}

#[test]
fn dishonest_players_are_excluded_from_guarantees() {
    let inst = world(D, 10);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(BUDGET))
        .adversary(Corruption::Count { count: 10 }, Inverter)
        .build()
        .run(Algorithm::CalculatePreferences, 11);
    assert_eq!(out.errors.evaluated, 110, "only honest players evaluated");
    assert_eq!(out.dishonest_count, 10);
}

#[test]
fn zero_corruption_equals_corruption_none() {
    let inst = world(D, 12);
    let a = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(BUDGET))
        .build()
        .run(Algorithm::CalculatePreferences, 13);
    let b = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(BUDGET))
        .adversary(Corruption::Count { count: 0 }, Inverter)
        .build()
        .run(Algorithm::CalculatePreferences, 13);
    assert_eq!(a.output, b.output, "empty corruption must be a no-op");
}
