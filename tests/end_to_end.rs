//! End-to-end integration: the full public API across crates, honest runs.

use byzscore::{Algorithm, ProtocolParams, Session};
use byzscore_model::metrics::{approx_ratios, opt_bounds};
use byzscore_model::{Balance, Workload};

#[test]
fn planted_world_error_is_order_d() {
    let d = 8;
    let inst = Workload::PlantedClusters {
        players: 128,
        objects: 384,
        clusters: 4,
        diameter: d,
        balance: Balance::Even,
    }
    .generate(1);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(4))
        .build()
        .run(Algorithm::CalculatePreferences, 2);
    assert!(out.errors.max <= 5 * d, "error {} > 5D", out.errors.max);
    assert!(out.errors.mean <= d as f64, "mean {} > D", out.errors.mean);
}

#[test]
fn constant_factor_approximation_of_opt() {
    let inst = Workload::PlantedClusters {
        players: 96,
        objects: 288,
        clusters: 4,
        diameter: 12,
        balance: Balance::Even,
    }
    .generate(3);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(4))
        .build()
        .run(Algorithm::CalculatePreferences, 4);
    let bounds = opt_bounds(inst.truth(), 96 / 4);
    let (_, vs_upper) = approx_ratios(&out.errors.per_player, &bounds);
    // Definition 1: a constant-factor approximation. 6 is a generous
    // constant for laptop n; the paper proves only "some constant c".
    assert!(
        vs_upper <= 6.0,
        "approximation ratio {vs_upper:.2} too large"
    );
}

#[test]
fn skewed_cluster_sizes_work() {
    let inst = Workload::PlantedClusters {
        players: 120,
        objects: 360,
        clusters: 4,
        diameter: 6,
        balance: Balance::Zipf(1.0),
    }
    .generate(5);
    // Budget must match the *smallest* cluster; Zipf(1.0) over 4 clusters
    // keeps every cluster ≥ players/8.
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(8))
        .build()
        .run(Algorithm::CalculatePreferences, 6);
    assert!(out.errors.max <= 6 * 6, "zipf error {}", out.errors.max);
}

#[test]
fn uniform_random_world_defeats_everyone() {
    // §1: with independent preferences, collaboration cannot help. The
    // protocol must stay total and sane, but errors are necessarily large.
    let inst = Workload::UniformRandom {
        players: 64,
        objects: 128,
    }
    .generate(7);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(4))
        .build()
        .run(Algorithm::CalculatePreferences, 8);
    assert_eq!(out.output().rows(), 64);
    // Nobody can predict independent coin flips: expect ≈ m/2 errors for
    // the worst player, certainly > m/5.
    assert!(
        out.errors.max as f64 > 128.0 / 5.0,
        "implausibly good on random data: {}",
        out.errors.max
    );
}

#[test]
fn anticorrelated_camps_are_separated() {
    let inst = Workload::Anticorrelated {
        players: 80,
        objects: 240,
    }
    .generate(9);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(2))
        .build()
        .run(Algorithm::CalculatePreferences, 10);
    // Exact camps: clustering should recover them and the majority is exact.
    assert!(
        out.errors.max <= 4,
        "camps not separated: {}",
        out.errors.max
    );
}

#[test]
fn more_objects_than_players_generalizes() {
    // §2: "generalizing for more objects than players is straightforward".
    let inst = Workload::PlantedClusters {
        players: 64,
        objects: 512,
        clusters: 4,
        diameter: 6,
        balance: Balance::Even,
    }
    .generate(11);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(4))
        .build()
        .run(Algorithm::CalculatePreferences, 12);
    assert_eq!(out.output().cols(), 512);
    assert!(out.errors.max <= 6 * 6, "error {}", out.errors.max);
}

#[test]
fn probe_budget_is_respected_loosely() {
    // Lemma 11: O(B·polylog n) probes. Check against a concrete polylog
    // envelope with a generous constant.
    let n = 128usize;
    let inst = Workload::PlantedClusters {
        players: n,
        objects: n,
        clusters: 4,
        diameter: 8,
        balance: Balance::Even,
    }
    .generate(13);
    let b = 4;
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(b))
        .build()
        .run(Algorithm::CalculatePreferences, 14);
    let ln = (n as f64).ln();
    let envelope = 40.0 * b as f64 * ln.powi(3);
    assert!(
        (out.max_honest_probes as f64) < envelope,
        "probes {} above envelope {envelope:.0}",
        out.max_honest_probes
    );
}

#[test]
fn paper_faithful_preset_runs() {
    // The literal constants are huge; a tiny instance suffices to check the
    // preset end to end.
    let inst = Workload::CloneClasses {
        players: 48,
        objects: 48,
        classes: 2,
        balance: Balance::Even,
    }
    .generate(15);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::paper_faithful(2))
        .build()
        .run(Algorithm::CalculatePreferences, 16);
    assert_eq!(out.output().rows(), 48);
    // At n=48 the 220·ln n threshold exceeds the object count, so the
    // graph is complete and the output degenerates to a 2-class majority —
    // totality, not accuracy, is the contract at toy scale (DESIGN.md §4).
}

#[test]
fn outcome_reports_are_consistent() {
    let inst = Workload::CloneClasses {
        players: 32,
        objects: 64,
        classes: 2,
        balance: Balance::Even,
    }
    .generate(17);
    let out = Session::builder()
        .instance(&inst)
        .params(ProtocolParams::with_budget(2))
        .build()
        .run(Algorithm::CalculatePreferences, 18);
    assert_eq!(out.errors.per_player.len(), 32);
    assert_eq!(out.probes.counts().len(), 32);
    assert!(out.max_honest_probes <= out.probes.max());
    assert!(out.board.claim_posts > 0);
    assert_eq!(out.dishonest_count, 0);
    assert!(out.errors.p95 <= out.errors.max);
}
