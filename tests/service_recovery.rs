//! Crash-recovery and fault-injection integration tests for the
//! journaled TCP front-end: a server killed at any point resumes from
//! its write-ahead journal with bit-identical answers, supervised
//! workers turn panics into typed `Retryable` answers the client
//! retries through, and injected connection faults (drops, stalls) are
//! absorbed by the reconnect/deadline machinery — with every retried
//! mutation applied exactly once.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use byzscore_board::par::set_thread_limit;
use byzscore_service::checkpoint::{checkpoint_path, previous_checkpoint_path};
use byzscore_service::net::{replay_with_options, request_stats, ReplayOptions};
use byzscore_service::{
    combined_digest, parse_op, FaultPlan, JournaledEngine, NetConfig, RecoverySource, Request,
    Server, ServiceEngine, Trace, TraceSpec, DEFAULT_SHARDS,
};

fn spawn_server(config: NetConfig) -> SocketAddr {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    thread::spawn(move || server.run());
    addr
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("byzscore_recovery_{tag}_{}", std::process::id()))
}

/// Remove a journal and both of its checkpoint generations.
fn scrub(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(checkpoint_path(path));
    let _ = std::fs::remove_file(previous_checkpoint_path(path));
}

fn ops(lines: &[&str]) -> Vec<Request> {
    lines
        .iter()
        .map(|l| parse_op(l).expect("test op parses"))
        .collect()
}

/// The little nine-op script the fault tests drive: its op indices are
/// the dispatcher indices (one connection, in-order sends), so a fault
/// schedule addresses specific shapes — probes at 1/2/5, queries at
/// 3/6, barriers at 0/4/7/8.
fn fault_script() -> Vec<Request> {
    ops(&[
        "open 24 48 3 3 11 naive 4 1 2000 13",
        "probe 0 3 1,2,9",
        "probe 0 5 0,4",
        "query 0 1,3 -",
        "churn 0 2 2",
        "probe 0 1 7",
        "query 0 0,2 -",
        "epoch 0",
        "close 0",
    ])
}

/// Kill-anywhere determinism at the socket level: replay a prefix of a
/// generated trace against a journaled server, abandon it (the journal
/// is all that survives a `kill -9`; a clean exit writes nothing
/// extra), recover a fresh server from the journal, and replay the
/// rest. The concatenated answers must equal the uninterrupted
/// in-process run bit-for-bit — at a mid-session cut, right after the
/// first op, and one op before the end.
#[test]
fn socket_recovery_resumes_with_identical_answers() {
    let trace = Trace::generate(&TraceSpec::small(23));
    let expected = trace.replay();
    let len = trace.ops.len();
    for cut in [1, len / 3, 2 * len / 3, len - 1] {
        let path = temp_journal(&format!("cut{cut}"));
        let _ = std::fs::remove_file(&path);

        let before = spawn_server(NetConfig {
            journal: Some(path.clone()),
            ..NetConfig::default()
        });
        let first = replay_with_options(before, &trace.ops[..cut], ReplayOptions::default())
            .expect("prefix replay succeeds");

        let recovered = Server::bind(
            "127.0.0.1:0",
            NetConfig {
                journal: Some(path.clone()),
                recover: true,
                ..NetConfig::default()
            },
        )
        .expect("recovery bind succeeds");
        let mutating = trace.ops[..cut].iter().filter(|o| o.is_mutating()).count();
        assert_eq!(
            recovered.recovered_ops(),
            mutating,
            "recovery replays exactly the journaled (mutating) prefix at cut {cut}"
        );
        let after = recovered.local_addr();
        thread::spawn(move || recovered.run());
        let rest = replay_with_options(after, &trace.ops[cut..], ReplayOptions::default())
            .expect("post-recovery replay succeeds");

        let mut all = first.responses;
        all.extend(rest.responses);
        assert_eq!(
            combined_digest(&all),
            combined_digest(&expected),
            "digest diverged across a crash at op {cut}"
        );
        assert_eq!(all, expected, "answers diverged across a crash at op {cut}");
        let _ = std::fs::remove_file(&path);
    }
}

/// A torn tail — the op line a crash cut mid-write — is dropped on
/// recovery (it never executed: execution follows the fsynced append),
/// truncated from the file, and the journal keeps accepting appends.
#[test]
fn torn_journal_tail_is_dropped_and_recovery_continues() {
    use std::io::Write as _;

    let trace = Trace::generate(&TraceSpec::small(29));
    let expected = trace.replay();
    let cut = trace.ops.len() / 2;
    let path = temp_journal("torn");
    let _ = std::fs::remove_file(&path);

    let before = spawn_server(NetConfig {
        journal: Some(path.clone()),
        ..NetConfig::default()
    });
    let first = replay_with_options(before, &trace.ops[..cut], ReplayOptions::default())
        .expect("prefix replay succeeds");

    // A crash mid-append: a seq annotation and half an op line, no
    // trailing newline.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("journal exists");
    file.write_all(b"# wal seq=9999\nchurn 0 9")
        .expect("append torn tail");
    drop(file);

    let recovered = Server::bind(
        "127.0.0.1:0",
        NetConfig {
            journal: Some(path.clone()),
            recover: true,
            ..NetConfig::default()
        },
    )
    .expect("recovery tolerates the torn tail");
    let mutating = trace.ops[..cut].iter().filter(|o| o.is_mutating()).count();
    assert_eq!(recovered.recovered_ops(), mutating, "torn op never counts");
    let after = recovered.local_addr();
    thread::spawn(move || recovered.run());
    let rest = replay_with_options(after, &trace.ops[cut..], ReplayOptions::default())
        .expect("post-recovery replay succeeds");

    let mut all = first.responses;
    all.extend(rest.responses);
    assert_eq!(all, expected, "answers diverged across a torn-tail crash");
    let _ = std::fs::remove_file(&path);
}

/// Run the fault script against a journaled server carrying `plan`,
/// with the resilient client; return the replay plus the server addr
/// for stats.
fn run_with_faults(
    tag: &str,
    plan: FaultPlan,
    options: ReplayOptions,
) -> (byzscore_service::SocketReplay, SocketAddr, PathBuf) {
    let path = temp_journal(tag);
    let _ = std::fs::remove_file(&path);
    let addr = spawn_server(NetConfig {
        journal: Some(path.clone()),
        fault: Arc::new(plan),
        ..NetConfig::default()
    });
    let replay =
        replay_with_options(addr, &fault_script(), options).expect("faulted replay completes");
    (replay, addr, path)
}

/// A shard worker panicking mid-probe answers a typed `Retryable`, the
/// server keeps running, and the client's resend lands the exact
/// in-process answer — the probe applies once (idempotent re-post).
#[test]
fn worker_panic_on_a_probe_is_retried_through() {
    let expected = ServiceEngine::new().execute(&fault_script());
    let plan = FaultPlan::parse("panic-worker@2").expect("plan parses");
    let (replay, addr, path) = run_with_faults("panic_probe", plan, ReplayOptions::default());
    assert_eq!(
        replay.responses, expected,
        "answers diverged under a worker panic"
    );
    assert_eq!(replay.retryable_retries, 1, "exactly one typed retry");
    let stats = request_stats(addr).expect("server survived the panic");
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.retryable, 1);
    assert_eq!(stats.admitted, stats.completed);
    let _ = std::fs::remove_file(&path);
}

/// A worker panicking on one slice of a cross-shard query fails the
/// whole query exactly once (no partial merge), and the retry answers
/// identically — queries are pure reads, so nothing double-applies.
#[test]
fn worker_panic_on_a_query_slice_fails_the_query_once() {
    let expected = ServiceEngine::new().execute(&fault_script());
    let plan = FaultPlan::parse("panic-worker@6").expect("plan parses");
    let (replay, addr, path) = run_with_faults("panic_query", plan, ReplayOptions::default());
    assert_eq!(
        replay.responses, expected,
        "answers diverged under a query panic"
    );
    assert_eq!(
        replay.retryable_retries, 1,
        "one Retryable per failed query"
    );
    let stats = request_stats(addr).expect("server survived the panic");
    assert!(stats.worker_panics >= 1, "at least one slice panicked");
    assert_eq!(stats.retryable, 1, "the merge cell answered exactly once");
    assert_eq!(stats.admitted, stats.completed);
    let _ = std::fs::remove_file(&path);
}

/// A panic inside a barrier — write lock held, engine state unknown —
/// poisons nothing observable: the dispatcher rebuilds the engine from
/// the journal (which recorded the barrier before it ran), answers
/// `Retryable`, and the client's resend hits the dedupe window, so the
/// churn applies exactly once.
#[test]
fn barrier_panic_rebuilds_from_the_journal() {
    let expected = ServiceEngine::new().execute(&fault_script());
    let plan = FaultPlan::parse("panic-barrier@4").expect("plan parses");
    let (replay, addr, path) = run_with_faults("panic_barrier", plan, ReplayOptions::default());
    assert_eq!(
        replay.responses, expected,
        "answers diverged across a rebuild"
    );
    assert_eq!(replay.retryable_retries, 1);
    let stats = request_stats(addr).expect("server survived the barrier panic");
    assert_eq!(stats.rebuilds, 1, "one rebuild from the journal");
    assert_eq!(stats.deduped, 1, "the resent churn hit the dedupe window");
    assert_eq!(stats.admitted, stats.completed);
    let _ = std::fs::remove_file(&path);
}

/// The server severing a connection mid-dispatch (the op executes, the
/// answer is lost) looks like a network partition: the client
/// reconnects, resends its pending ops, and finishes with the exact
/// uninterrupted answers.
#[test]
fn dropped_connection_reconnects_and_resends() {
    let expected = ServiceEngine::new().execute(&fault_script());
    let plan = FaultPlan::parse("drop-conn@5").expect("plan parses");
    let (replay, _addr, path) = run_with_faults("drop_conn", plan, ReplayOptions::default());
    assert_eq!(
        replay.responses, expected,
        "answers diverged across a dropped connection"
    );
    assert!(replay.reconnects >= 1, "the client reconnected");
    let _ = std::fs::remove_file(&path);
}

/// A wedged server (the connection thread stalls before admission)
/// trips the client's per-request deadline; the reconnect resends the
/// barrier, and when the stalled thread finally admits the original
/// copy it hits the dedupe window — the epoch advances exactly once.
#[test]
fn stalled_admission_trips_the_deadline_and_dedupes() {
    let expected = ServiceEngine::new().execute(&fault_script());
    let plan = FaultPlan::parse("stall@7:900").expect("plan parses");
    let options = ReplayOptions {
        deadline: Some(Duration::from_millis(250)),
        ..ReplayOptions::default()
    };
    let (replay, addr, path) = run_with_faults("stall", plan, options);
    assert_eq!(
        replay.responses, expected,
        "answers diverged across a stall"
    );
    assert!(replay.reconnects >= 1, "the deadline forced a reconnect");
    // Let the stalled thread wake up and flush its stale admission.
    thread::sleep(Duration::from_millis(1200));
    let stats = request_stats(addr).expect("stats");
    assert_eq!(
        stats.admitted, stats.completed,
        "the stale admission was answered"
    );
    assert!(
        stats.deduped >= 1,
        "the stale barrier hit the dedupe window"
    );
    let _ = std::fs::remove_file(&path);
}

/// Checkpoint round-trip through the socket server, killed mid-trace,
/// at 1/2/8 worker threads: the recovered server must come up from a
/// checkpoint (not a full-journal replay) and the concatenated answers
/// must match the uninterrupted in-process run bit-for-bit at every
/// thread count — the warm≡cold pin extended to snapshot state.
#[test]
fn compaction_recovery_is_thread_count_invariant() {
    let trace = Trace::generate(&TraceSpec::small(31));
    let expected = trace.replay();
    let cut = 2 * trace.ops.len() / 3;
    for threads in [1usize, 2, 8] {
        set_thread_limit(Some(threads));
        let path = temp_journal(&format!("ckpt_threads{threads}"));
        scrub(&path);

        let before = spawn_server(NetConfig {
            journal: Some(path.clone()),
            compact_every: Some(4),
            ..NetConfig::default()
        });
        let first = replay_with_options(before, &trace.ops[..cut], ReplayOptions::default())
            .expect("prefix replay succeeds");

        let recovered = Server::bind(
            "127.0.0.1:0",
            NetConfig {
                journal: Some(path.clone()),
                recover: true,
                compact_every: Some(4),
                ..NetConfig::default()
            },
        )
        .expect("recovery bind succeeds");
        assert_eq!(
            recovered.recovery_source(),
            Some(RecoverySource::Checkpoint),
            "with every=4 compaction the prefix leaves a covering checkpoint"
        );
        let mutating = trace.ops[..cut].iter().filter(|o| o.is_mutating()).count();
        assert!(
            recovered.recovered_ops() < mutating,
            "the checkpoint bounded the tail below a full replay \
             ({} vs {mutating} at {threads} threads)",
            recovered.recovered_ops()
        );
        let after = recovered.local_addr();
        thread::spawn(move || recovered.run());
        let rest = replay_with_options(after, &trace.ops[cut..], ReplayOptions::default())
            .expect("post-recovery replay succeeds");

        let mut all = first.responses;
        all.extend(rest.responses);
        assert_eq!(
            all, expected,
            "answers diverged across a checkpointed crash at {threads} threads"
        );
        scrub(&path);
    }
    set_thread_limit(None);
}

/// A primary checkpoint that lost its footer (the partial-write tear
/// the footer exists to detect) is skipped in favour of the rotated
/// previous generation, and the recovered server still answers
/// bit-identically.
#[test]
fn torn_primary_checkpoint_falls_back_to_previous_generation() {
    let trace = Trace::generate(&TraceSpec::small(37));
    let expected = trace.replay();
    let cut = trace.ops.len() - 2;
    let path = temp_journal("torn_ckpt");
    scrub(&path);

    let before = spawn_server(NetConfig {
        journal: Some(path.clone()),
        compact_every: Some(3),
        ..NetConfig::default()
    });
    let first = replay_with_options(before, &trace.ops[..cut], ReplayOptions::default())
        .expect("prefix replay succeeds");

    // The crash window: a later cycle rotated the good checkpoint to
    // .prev and published a torn primary, dying before truncation —
    // keep the fallback covering the journal base, lose the footer.
    let primary = checkpoint_path(&path);
    let bytes = std::fs::read(&primary).expect("primary checkpoint exists after compaction");
    std::fs::copy(&primary, previous_checkpoint_path(&path)).expect("rotate to prev");
    std::fs::write(&primary, &bytes[..bytes.len() * 2 / 3]).expect("tear the primary");

    let recovered = Server::bind(
        "127.0.0.1:0",
        NetConfig {
            journal: Some(path.clone()),
            recover: true,
            compact_every: Some(3),
            ..NetConfig::default()
        },
    )
    .expect("recovery tolerates the torn primary");
    assert_eq!(
        recovered.recovery_source(),
        Some(RecoverySource::PreviousCheckpoint),
        "the torn footer forced the previous-generation fallback"
    );
    let after = recovered.local_addr();
    thread::spawn(move || recovered.run());
    let rest = replay_with_options(after, &trace.ops[cut..], ReplayOptions::default())
        .expect("post-recovery replay succeeds");

    let mut all = first.responses;
    all.extend(rest.responses);
    assert_eq!(all, expected, "answers diverged across a torn checkpoint");
    scrub(&path);
}

/// The other crash window: the checkpoint is durable but the journal
/// truncation never happened (kill between `save_checkpoint` and the
/// tail rename). The journal then still holds ops the checkpoint
/// already covers — recovery must skip exactly those and replay
/// nothing twice.
#[test]
fn durable_checkpoint_over_an_untruncated_journal_skips_covered_ops() {
    let trace = Trace::generate(&TraceSpec::small(41));
    let expected = trace.replay();
    let cut = 2 * trace.ops.len() / 3;
    let path = temp_journal("untruncated");
    scrub(&path);

    let mut responses = Vec::with_capacity(trace.ops.len());
    {
        let mut engine =
            JournaledEngine::create(&path, DEFAULT_SHARDS).expect("journal create succeeds");
        for (seq, op) in trace.ops[..cut].iter().enumerate() {
            responses.push(
                engine
                    .submit(seq as u64, op)
                    .expect("journal append succeeds"),
            );
        }
        // Freeze the pre-compaction journal (base 0, every op), then
        // compact and put the old bytes back: checkpoint at K over a
        // journal whose base marker says 0 — the exact state a kill
        // between the checkpoint fsync and the tail rename leaves.
        let pre_compaction = std::fs::read(&path).expect("journal readable");
        engine.compact().expect("compaction succeeds");
        std::fs::write(&path, pre_compaction).expect("restore the untruncated journal");
    }

    let (mut engine, report) =
        JournaledEngine::recover(&path, DEFAULT_SHARDS).expect("recovery succeeds");
    let mutating = trace.ops[..cut].iter().filter(|o| o.is_mutating()).count();
    assert_eq!(
        report, 0,
        "every journal entry was already covered by the checkpoint"
    );
    assert_eq!(
        engine.history_ops(),
        mutating as u64,
        "the skipped entries still count toward the history"
    );
    for (seq, op) in trace.ops.iter().enumerate().skip(cut) {
        responses.push(
            engine
                .submit(seq as u64, op)
                .expect("journal append succeeds"),
        );
    }
    assert_eq!(
        responses, expected,
        "answers diverged across an untruncated-journal recovery"
    );
    scrub(&path);
}
