//! Reproducibility: every run is a pure function of (instance seed, master
//! seed), independent of thread scheduling — the property all experiment
//! tables rely on.

use byzscore::{Algorithm, Session, SweepPoint};
use byzscore_adversary::{Corruption, Inverter};
use byzscore_election::{elect, ElectionParams, GreedyInfiltrate};
use byzscore_model::{Balance, Workload};

fn world(seed: u64) -> byzscore_model::Instance {
    Workload::PlantedClusters {
        players: 96,
        objects: 192,
        clusters: 4,
        diameter: 6,
        balance: Balance::Even,
    }
    .generate(seed)
}

#[test]
fn calculate_preferences_is_deterministic() {
    let inst = world(1);
    let sys = Session::builder().instance(&inst).budget(4).build();
    let a = sys.run(Algorithm::CalculatePreferences, 42);
    let b = sys.run(Algorithm::CalculatePreferences, 42);
    assert_eq!(a.output, b.output);
    assert_eq!(a.probes.counts(), b.probes.counts());
    assert_eq!(a.board.claim_posts, b.board.claim_posts);
}

#[test]
fn robust_mode_is_deterministic() {
    let inst = world(2);
    let sys = Session::builder().instance(&inst).budget(4).build();
    let a = sys.run(Algorithm::Robust, 43);
    let b = sys.run(Algorithm::Robust, 43);
    assert_eq!(a.output, b.output);
    let leaders_a: Vec<u32> = a.repetitions.iter().map(|r| r.leader).collect();
    let leaders_b: Vec<u32> = b.repetitions.iter().map(|r| r.leader).collect();
    assert_eq!(leaders_a, leaders_b);
}

#[test]
fn byzantine_runs_are_deterministic() {
    let inst = world(3);
    let run = || {
        Session::builder()
            .instance(&inst)
            .budget(4)
            .adversary(Corruption::Count { count: 8 }, Inverter)
            .build()
            .run(Algorithm::CalculatePreferences, 44)
    };
    assert_eq!(run().output, run().output);
}

#[test]
fn different_seeds_differ() {
    // The memoized oracle saturates on small worlds (every player ends up
    // evaluating most objects once), so per-player counts can coincide
    // across seeds. Seed sensitivity is asserted where it lives: the shared
    // randomness. Distinct master seeds must yield distinct samples and
    // distinct probe assignments.
    use byzscore::sampling::choose_sample;
    use byzscore_random::Beacon;
    let s1 = choose_sample(&Beacon::honest(1), 96, 192, 16, 2.0);
    let s2 = choose_sample(&Beacon::honest(2), 96, 192, 16, 2.0);
    assert_ne!(s1, s2, "distinct seeds must give distinct samples");

    // And the protocol outputs remain a pure function of the seed.
    let inst = world(4);
    let sys = Session::builder().instance(&inst).budget(4).build();
    let a = sys.run(Algorithm::CalculatePreferences, 1);
    let a2 = sys.run(Algorithm::CalculatePreferences, 1);
    assert_eq!(a.output, a2.output);
}

#[test]
fn baselines_are_deterministic() {
    let inst = world(5);
    let sys = Session::builder().instance(&inst).budget(4).build();
    for alg in [
        Algorithm::NaiveSampling,
        Algorithm::Solo,
        Algorithm::GlobalMajority,
        Algorithm::OracleClusters,
    ] {
        let a = sys.run(alg, 45);
        let b = sys.run(alg, 45);
        assert_eq!(a.output, b.output, "{} not deterministic", alg.name());
    }
}

#[test]
fn elections_are_deterministic_and_seed_sensitive() {
    let dishonest: Vec<bool> = (0..128).map(|p| p % 4 == 0).collect();
    let params = ElectionParams::for_players(128);
    let a = elect(&dishonest, &GreedyInfiltrate, &params, 7);
    let b = elect(&dishonest, &GreedyInfiltrate, &params, 7);
    assert_eq!(a.leader, b.leader);
    let different =
        (0..32).any(|s| elect(&dishonest, &GreedyInfiltrate, &params, s).leader != a.leader);
    assert!(different, "leader should vary across seeds");
}

/// `set_thread_limit` is process-global; tests that sweep it must not
/// interleave or each would run under the other's limit. (Poisoning is
/// ignored: a panicked holder already failed its own assertions.)
static THREAD_LIMIT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn results_are_identical_across_worker_thread_counts() {
    // The engine's `--threads` override must never change results: a
    // `Robust` run (elections + repetitions + RSelect, the maximal
    // par_map_players consumer) has to be bit-identical under 1, 2, and 8
    // worker threads. This is the regression fence for the par.rs
    // invariant that outputs are collected by player index.
    use byzscore_board::par::{par_map_players, set_thread_limit};

    let _gate = THREAD_LIMIT_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let inst = world(8);
    let run = || {
        Session::builder()
            .instance(&inst)
            .budget(4)
            .adversary(Corruption::Count { count: 8 }, Inverter)
            .build()
            .run(Algorithm::Robust, 46)
    };

    let reference = run();
    let ref_leaders: Vec<u32> = reference.repetitions.iter().map(|r| r.leader).collect();
    let ref_direct = par_map_players(257, |p| p.wrapping_mul(0x9e37_79b9) ^ 0x5bd1);

    for threads in [1usize, 2, 8] {
        set_thread_limit(Some(threads));
        let out = run();
        assert_eq!(
            out.output, reference.output,
            "Robust output differs at {threads} worker thread(s)"
        );
        assert_eq!(
            out.probes.counts(),
            reference.probes.counts(),
            "probe ledger differs at {threads} worker thread(s)"
        );
        let leaders: Vec<u32> = out.repetitions.iter().map(|r| r.leader).collect();
        assert_eq!(
            leaders, ref_leaders,
            "election transcript differs at {threads} worker thread(s)"
        );
        assert_eq!(
            par_map_players(257, |p| p.wrapping_mul(0x9e37_79b9) ^ 0x5bd1),
            ref_direct,
            "par_map_players order differs at {threads} worker thread(s)"
        );
    }
    set_thread_limit(None);
}

#[test]
fn run_sweep_is_bit_identical_across_thread_counts() {
    // Parallel sweep points must not perturb per-point RNG streams: a
    // `run_sweep` over mixed algorithms has to match sequential `run` calls
    // and be bit-identical under 1, 2, and 8 worker threads (the same fence
    // `results_are_identical_across_worker_thread_counts` provides for
    // intra-run phase parallelism).
    use byzscore::ClusterSpec;
    use byzscore_board::par::set_thread_limit;

    let _gate = THREAD_LIMIT_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let inst = world(9);
    let session = Session::builder()
        .instance(&inst)
        .budget(4)
        .adversary(Corruption::Count { count: 8 }, Inverter)
        .build();
    let points = [
        SweepPoint::new(Algorithm::CalculatePreferences, 50),
        SweepPoint::new(Algorithm::CalculatePreferences, 51),
        SweepPoint::new(Algorithm::GlobalMajority, 52),
        SweepPoint::new(Algorithm::Solo, 53),
        SweepPoint::new(Algorithm::NaiveSampling, 54),
    ];
    // Reference: strictly sequential executions.
    let reference: Vec<_> = points
        .iter()
        .map(|pt| session.run(pt.algorithm, pt.seed))
        .collect();

    for threads in [1usize, 2, 8] {
        set_thread_limit(Some(threads));
        let swept = session.run_sweep(&points);
        for ((pt, re), out) in points.iter().zip(&reference).zip(&swept) {
            assert_eq!(
                out.output,
                re.output,
                "{} output differs at {threads} worker thread(s)",
                pt.algorithm.name()
            );
            assert_eq!(
                out.probes.counts(),
                re.probes.counts(),
                "{} probe ledger differs at {threads} worker thread(s)",
                pt.algorithm.name()
            );
            assert_eq!(
                out.board,
                re.board,
                "{} board stats differ at {threads} worker thread(s)",
                pt.algorithm.name()
            );
        }
    }
    set_thread_limit(None);

    // The procedural backend obeys the same invariant.
    let spec = ClusterSpec {
        players: 96,
        objects: 128,
        clusters: 4,
        diameter: 6,
        seed: 0x5eed,
    };
    let proc_session = Session::builder().procedural(spec).budget(4).build();
    let proc_points = [
        SweepPoint::new(Algorithm::GlobalMajority, 60),
        SweepPoint::new(Algorithm::Solo, 61),
    ];
    let proc_ref = proc_session.run_sweep(&proc_points);
    for threads in [1usize, 8] {
        set_thread_limit(Some(threads));
        let swept = proc_session.run_sweep(&proc_points);
        for (re, out) in proc_ref.iter().zip(&swept) {
            assert_eq!(out.output, re.output);
            assert_eq!(out.probes.counts(), re.probes.counts());
        }
    }
    set_thread_limit(None);
}

#[test]
fn fused_rselect_is_bit_identical_across_thread_counts() {
    // The streaming RSelect tournaments advance inside the guess loop and
    // record per-player peak candidate residency; both the outputs and the
    // summed `peak_candidate_bytes` must be bit-identical under 1, 2, and
    // 8 worker threads for every fused consumer (Figure 2's per-guess
    // tournament, the naive baseline's, and the robust wrapper's final
    // cross-repetition one).
    use byzscore_board::par::set_thread_limit;

    let _gate = THREAD_LIMIT_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let inst = world(14);
    let session = Session::builder()
        .instance(&inst)
        .budget(4)
        .adversary(Corruption::Count { count: 8 }, Inverter)
        .build();

    for alg in [
        Algorithm::CalculatePreferences,
        Algorithm::NaiveSampling,
        Algorithm::Robust,
    ] {
        let reference = session.run(alg, 55);
        assert!(
            reference.peak_candidate_bytes > 0,
            "{}: fused tournaments should meter candidate residency",
            alg.name()
        );
        for threads in [1usize, 2, 8] {
            set_thread_limit(Some(threads));
            let out = session.run(alg, 55);
            assert_eq!(
                out.output,
                reference.output,
                "{} output differs at {threads} worker thread(s)",
                alg.name()
            );
            assert_eq!(
                out.probes.counts(),
                reference.probes.counts(),
                "{} probe ledger differs at {threads} worker thread(s)",
                alg.name()
            );
            assert_eq!(
                out.peak_candidate_bytes,
                reference.peak_candidate_bytes,
                "{} peak candidate bytes differ at {threads} worker thread(s)",
                alg.name()
            );
        }
        set_thread_limit(None);
    }
}

#[test]
fn banded_clustering_is_bit_identical_across_thread_counts() {
    // Banded neighbor discovery parallelizes its degree pass and (in scan
    // mode) its per-peel degree updates; the resulting `Clustering` must be
    // bit-identical under 1, 2, and 8 worker threads, and identical to the
    // materialized exact path — worker count can only change speed.
    use byzscore::cluster::{NeighborIndex, NeighborStrategy};
    use byzscore_bitset::Bits;
    use byzscore_board::par::set_thread_limit;

    let _gate = THREAD_LIMIT_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    // Big enough (≥ 32 players) that par_map_players actually fans out.
    let inst = Workload::PlantedClusters {
        players: 640,
        objects: 512,
        clusters: 8,
        diameter: 6,
        balance: Balance::Even,
    }
    .generate(21);
    let zvecs: Vec<_> = (0..640).map(|p| inst.truth().row(p).to_bitvec()).collect();

    for threshold in [14usize, 40] {
        let exact = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Exact);
        let banded = NeighborIndex::build(&zvecs, threshold, NeighborStrategy::Banded);
        let reference = exact.peel(40);
        for threads in [1usize, 2, 8] {
            set_thread_limit(Some(threads));
            let got = banded.peel(40);
            assert_eq!(
                got.assignment, reference.assignment,
                "banded assignment differs at {threads} worker thread(s), τ={threshold}"
            );
            assert_eq!(
                got.clusters, reference.clusters,
                "banded clusters differ at {threads} worker thread(s), τ={threshold}"
            );
        }
        set_thread_limit(None);
    }
}

#[test]
fn error_stream_sink_matches_dense_sink() {
    // The streaming sink drops output rows after folding their errors; all
    // error statistics, probe counts, and board accounting must be
    // bit-identical to the dense default — only `Outcome::output` differs
    // (None vs the materialized matrix). Checked on both substrates.
    use byzscore::{ClusterSpec, OutputSink};

    let inst = world(12);
    let algorithms = [
        Algorithm::CalculatePreferences,
        Algorithm::NaiveSampling,
        Algorithm::Solo,
        Algorithm::GlobalMajority,
        Algorithm::Robust,
    ];
    let dense_sys = Session::builder()
        .instance(&inst)
        .budget(4)
        .adversary(Corruption::Count { count: 8 }, Inverter)
        .build();
    let stream_sys = Session::builder()
        .instance(&inst)
        .budget(4)
        .adversary(Corruption::Count { count: 8 }, Inverter)
        .output_sink(OutputSink::ErrorStream)
        .build();
    for alg in algorithms {
        let dense = dense_sys.run(alg, 71);
        let streamed = stream_sys.run(alg, 71);
        assert!(
            dense.output.is_some(),
            "{}: dense sink lost output",
            alg.name()
        );
        assert!(
            streamed.output.is_none(),
            "{}: stream sink materialized output",
            alg.name()
        );
        assert_eq!(
            streamed.errors,
            dense.errors,
            "{} errors differ",
            alg.name()
        );
        assert_eq!(
            streamed.probes.counts(),
            dense.probes.counts(),
            "{} probe ledger differs",
            alg.name()
        );
        assert_eq!(
            streamed.board,
            dense.board,
            "{} board stats differ",
            alg.name()
        );
        assert_eq!(streamed.max_honest_probes, dense.max_honest_probes);
        assert_eq!(streamed.dishonest_count, dense.dishonest_count);
    }

    // Procedural substrate (the @scale pairing that motivates the sink).
    let spec = ClusterSpec {
        players: 96,
        objects: 128,
        clusters: 4,
        diameter: 6,
        seed: 0x51_4e_4b,
    };
    let dense = Session::builder()
        .procedural(spec.clone())
        .budget(4)
        .build()
        .run(Algorithm::NaiveSampling, 72);
    let streamed = Session::builder()
        .procedural(spec)
        .budget(4)
        .output_sink(OutputSink::ErrorStream)
        .build()
        .run(Algorithm::NaiveSampling, 72);
    assert_eq!(streamed.errors, dense.errors);
    assert_eq!(streamed.probes.counts(), dense.probes.counts());
}

#[test]
fn dynamic_world_is_bit_identical_across_thread_counts() {
    // The dynamic-world trajectory — drifting truth, churn remapping, and
    // an adaptive adversary re-targeting between rounds — must be a pure
    // function of (pool, schedules, master seed): per-round outputs, probe
    // ledgers, churn decisions, and adaptive targets all bit-identical
    // under 1, 2, and 8 worker threads. Rounds are sequential, but each
    // round's phases fan out through par.rs — this is the fence for e14–e16.
    use byzscore::{ChurnSchedule, ClusterSpec, DriftLocality, DriftSchedule, DynamicWorld};
    use byzscore_adversary::{AdaptiveCorruption, AdaptivePolicy};
    use byzscore_board::par::set_thread_limit;

    let _gate = THREAD_LIMIT_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let build = || {
        DynamicWorld::builder()
            .pool(ClusterSpec {
                players: 90,
                objects: 128,
                clusters: 4,
                diameter: 6,
                seed: 0xd7,
            })
            .active(72)
            .params(byzscore::ProtocolParams::with_budget(4))
            .churn(ChurnSchedule::replacement(8, 0xc1))
            .drift(DriftSchedule::new(
                0.002,
                DriftLocality::Window { start: 0, len: 64 },
                0xd2,
            ))
            .adversary(
                AdaptiveCorruption::new(
                    Corruption::Count { count: 6 },
                    1,
                    AdaptivePolicy::SmallestGroup,
                ),
                Inverter,
            )
            .build()
    };

    let reference = build().run(Algorithm::CalculatePreferences, 3, 0xd3);
    for threads in [1usize, 2, 8] {
        set_thread_limit(Some(threads));
        let got = build().run(Algorithm::CalculatePreferences, 3, 0xd3);
        assert_eq!(got.rounds.len(), reference.rounds.len());
        for (g, r) in got.rounds.iter().zip(&reference.rounds) {
            assert_eq!(
                g.outcome.output, r.outcome.output,
                "round {} output differs at {threads} worker thread(s)",
                r.round
            );
            assert_eq!(
                g.outcome.probes.counts(),
                r.outcome.probes.counts(),
                "round {} probe ledger differs at {threads} worker thread(s)",
                r.round
            );
            assert_eq!(g.outcome.errors, r.outcome.errors);
            assert_eq!(g.retired, r.retired, "churn differs at {threads} threads");
            assert_eq!(g.joined, r.joined);
            assert_eq!(g.target_group, r.target_group);
        }
    }
    set_thread_limit(None);

    // The graded drift trajectory obeys the same invariant.
    use byzscore::graded::{score_graded_drift, DriftingGrades, GradeMatrix};
    let base = GradeMatrix::from_fn(32, 48, 2, |p, o| ((p / 8 + o) % 4) as u8);
    let world = DriftingGrades::new(&base, &DriftSchedule::uniform(0.01, 0xd4));
    let params = byzscore::ProtocolParams::with_budget(4);
    let reference = score_graded_drift(&world, &params, Algorithm::CalculatePreferences, 2, 0xd5);
    for threads in [1usize, 8] {
        set_thread_limit(Some(threads));
        let got = score_graded_drift(&world, &params, Algorithm::CalculatePreferences, 2, 0xd5);
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(
                g.predicted, r.predicted,
                "graded drift differs at {threads} worker thread(s)"
            );
            assert_eq!(g.max_l1, r.max_l1);
        }
    }
    set_thread_limit(None);
}

#[test]
fn committed_service_trace_replays_identically_across_thread_counts() {
    // The repo carries a recorded service workload (traces/service_quick
    // .trace); replaying it must reproduce the digest pinned in
    // traces/DIGESTS, per-op, at 1, 2, and 8 worker threads. Any engine
    // change that shifts responses has to regenerate the trace and the
    // manifest together — that is the point: the pair is the
    // compatibility fence for the byzscore-trace/v1 format and the
    // service's answer semantics. CI's bench-gate and service-e2e jobs
    // read the same manifest, so a trace rotation is a one-file edit.
    use byzscore_board::par::set_thread_limit;
    use byzscore_service::{combined_digest, parse_digests, ServiceEngine, Trace};

    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../traces/DIGESTS");
    let manifest = std::fs::read_to_string(manifest_path).expect("digest manifest readable");
    let expected_digest = parse_digests(&manifest)
        .expect("digest manifest parses")
        .into_iter()
        .find(|(name, _)| name == "service_quick.trace")
        .map(|(_, digest)| digest)
        .expect("service_quick.trace pinned in traces/DIGESTS");

    let _gate = THREAD_LIMIT_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../traces/service_quick.trace");
    let text = std::fs::read_to_string(path).expect("committed trace readable");
    let trace = Trace::from_text(&text).expect("committed trace parses");

    let reference = ServiceEngine::new().execute(&trace.ops);
    assert_eq!(
        combined_digest(&reference),
        expected_digest,
        "committed trace no longer replays to its pinned digest; \
         regenerate traces/service_quick.trace and traces/DIGESTS together"
    );
    let ref_digests: Vec<u64> = reference.iter().map(|r| r.digest()).collect();

    for threads in [1usize, 2, 8] {
        set_thread_limit(Some(threads));
        let got: Vec<u64> = ServiceEngine::new()
            .execute(&trace.ops)
            .iter()
            .map(|r| r.digest())
            .collect();
        assert_eq!(
            got, ref_digests,
            "per-op digests differ at {threads} worker thread(s)"
        );
    }
    set_thread_limit(None);
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
    /// Trace round trip: a generated workload survives serialize →
    /// deserialize exactly, and the deserialized copy replays to the
    /// same per-op response digests as the original at 1, 2, and 8
    /// worker threads.
    #[test]
    fn service_trace_round_trips_and_replays_bit_identically(
        seed in 0u64..1000,
        sessions in 1usize..3,
        ops in 0usize..25,
        skew in 0u32..3,
        churn_w in 0u32..4,
        epoch_w in 0u32..3,
    ) {
        use byzscore_board::par::set_thread_limit;
        use byzscore_service::{OpMix, ServiceAlgorithm, Trace, TraceSpec};
        use proptest::prelude::prop_assert_eq;

        let spec = TraceSpec {
            sessions,
            ops,
            players: 12,
            objects: 24,
            clusters: 2,
            diameter: 2,
            budget: 2,
            corrupt: 1,
            drift_ppm: 3_000,
            algorithm: ServiceAlgorithm::Naive,
            mix: OpMix { probe: 5, query: 3, churn: churn_w, epoch: epoch_w },
            skew,
            seed,
        };
        let trace = Trace::generate(&spec);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("generated trace parses back");
        prop_assert_eq!(&parsed, &trace);

        let _gate = THREAD_LIMIT_GATE
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let reference: Vec<u64> = trace.replay().iter().map(|r| r.digest()).collect();
        for threads in [1usize, 2, 8] {
            set_thread_limit(Some(threads));
            let got: Vec<u64> = parsed.replay().iter().map(|r| r.digest()).collect();
            prop_assert_eq!(&got, &reference);
        }
        set_thread_limit(None);
    }
}

#[test]
fn workload_generation_is_deterministic() {
    let a = world(6);
    let b = world(6);
    assert_eq!(a.truth(), b.truth());
    let planted_a = a.planted().unwrap();
    let planted_b = b.planted().unwrap();
    assert_eq!(planted_a.assignment, planted_b.assignment);
}
