//! Integration-test package; tests live in the package root.
